//! Experiment harness regenerating every figure- and table-like artifact
//! of *A Hierarchy of Temporal Properties* (see DESIGN.md §4 for the
//! experiment index), plus dependency-free microbenchmarks of the
//! decision procedures (see [`microbench`]).
//!
//! Each experiment is a binary under `src/bin/` that prints the paper's
//! artifact as reproduced by this library and asserts the expected shape;
//! EXPERIMENTS.md records paper-vs-measured for each. Run them all with
//! `for b in fig1_inclusion tab_examples …; do cargo run -p hierarchy-bench --bin $b; done`.

use std::time::Instant;

pub mod microbench;

/// Times a closure, returning (result, elapsed milliseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Prints an experiment header.
pub fn header(id: &str, title: &str) {
    println!("==== {id}: {title}");
}

/// Prints a pass/fail verdict line and panics on failure so experiment
/// binaries fail loudly in CI.
pub fn expect(label: &str, ok: bool) {
    println!("  [{}] {label}", if ok { "ok" } else { "FAIL" });
    assert!(ok, "experiment expectation failed: {label}");
}
