//! A tiny, dependency-free microbenchmark harness with a Criterion-like
//! surface (`group` / `bench_function` / `finish`), used by the
//! `benches/` targets so `cargo bench` works with zero external crates.
//!
//! Methodology: each benchmark is auto-calibrated to a batch size whose
//! wall time is comfortably above timer resolution, then `sample_size`
//! batches are timed and the median, minimum, and mean per-iteration
//! times reported. No statistical outlier analysis — these numbers are
//! for order-of-magnitude tracking in EXPERIMENTS.md, not A/B testing.

use std::time::{Duration, Instant};

/// Target wall time per calibrated batch.
const BATCH_TARGET: Duration = Duration::from_millis(5);

/// Default number of timed batches per benchmark.
const DEFAULT_SAMPLES: usize = 20;

/// A named collection of benchmarks, printed under a common heading.
pub struct Group {
    name: String,
    samples: usize,
}

/// Opens a benchmark group (prints its heading immediately).
pub fn group(name: impl Into<String>) -> Group {
    let name = name.into();
    println!("\n== bench group: {name}");
    Group {
        name,
        samples: DEFAULT_SAMPLES,
    }
}

impl Group {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Times `f`, printing median/min/mean per-iteration nanoseconds.
    pub fn bench_function<T>(&mut self, id: impl AsRef<str>, mut f: impl FnMut() -> T) {
        // Warm-up + calibration: find a batch size that runs ≥ BATCH_TARGET.
        let mut batch = 1usize;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= BATCH_TARGET || batch >= 1 << 20 {
                break;
            }
            // Grow geometrically toward the target.
            let grow = if elapsed.is_zero() {
                8
            } else {
                (BATCH_TARGET.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 8) as usize
            };
            batch = batch.saturating_mul(grow);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "  {:<40} median {:>12}  min {:>12}  mean {:>12}  (x{batch} per batch)",
            format!("{}/{}", self.name, id.as_ref()),
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(mean),
        );
    }

    /// Ends the group (parallel to Criterion's API; prints nothing).
    pub fn finish(&mut self) {}
}

/// Formats a nanosecond quantity with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut g = group("selftest");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("noop", || {
            count += 1;
            count
        });
        g.finish();
        assert!(count > 0);
    }
}
