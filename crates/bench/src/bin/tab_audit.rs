//! TAB-AUDIT — whole-suite static analysis (`spec-lint audit`): the
//! cost of auditing a property suite cold (fresh contexts, empty memo
//! tables) versus warm (the same contexts re-audited, riding the
//! memoized inclusion matrix), the canonical-hash prefilter's oracle
//! savings on duplicate-heavy suites, and how the audit scales with
//! suite size and worker count.
//!
//! The `expect()` lines are the acceptance gates: a warm re-audit beats
//! the cold audit and reports memo hits, the report is byte-identical
//! cold vs warm and across worker counts (stats aside), and on a
//! duplicate-heavy suite the prefilter decides the majority of pairs by
//! hash so the oracle-call count stays below even the *undirected* pair
//! count.
//!
//! `--smoke` runs a shrunken suite and skips the JSON artifact so the
//! tier-1 gate stays fast.

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::automata::analysis::{Analysis, AnalysisStats};
use hierarchy_core::automata::omega::OmegaAutomaton;
use hierarchy_core::automata::random;
use hierarchy_core::automata::random::rng::{SeedableRng, StdRng};
use hierarchy_core::lint::{audit_suite_ctx, AuditOptions, SuiteAudit};
use std::fmt::Write as _;

fn random_suite(rng: &mut StdRng, sigma: &Alphabet, n: usize) -> Vec<(String, OmegaAutomaton)> {
    (0..n)
        .map(|i| {
            (
                format!("m{i}"),
                random::random_streett(rng, sigma, 8, 1, 0.3).0,
            )
        })
        .collect()
}

fn audit_ctx(suite: &[(String, Analysis)], opts: &AuditOptions) -> SuiteAudit {
    let items: Vec<(&str, &Analysis)> = suite
        .iter()
        .map(|(name, ctx)| (name.as_str(), ctx))
        .collect();
    audit_suite_ctx(&items, opts).expect("one alphabet")
}

fn strip(mut audit: SuiteAudit) -> SuiteAudit {
    audit.stats = AnalysisStats::default();
    audit
}

fn main() {
    header(
        "TAB-AUDIT",
        "whole-suite audit: cold vs warm, hash prefilter, suite-size scaling",
    );
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sigma = Alphabet::new(["a", "b"]).expect("alphabet");
    let mut rng = StdRng::seed_from_u64(20260808);
    let opts = AuditOptions::default();

    // --- Cold vs warm: the same contexts audited twice. The second
    //     pass answers every inclusion query from the memo tables.
    let sizes: &[usize] = if smoke { &[6, 10] } else { &[8, 16, 24] };
    let mut rows = Vec::new();
    let mut warm_beats_cold = false;
    println!(
        "\n{:>6} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "n", "cold ms", "warm ms", "oracle", "memo hits", "findings"
    );
    for &n in sizes {
        let members = random_suite(&mut rng, &sigma, n);
        let suite: Vec<(String, Analysis)> = members
            .iter()
            .map(|(name, aut)| (name.clone(), Analysis::new(aut.clone())))
            .collect();
        let (cold, t_cold) = timed(|| audit_ctx(&suite, &opts));
        let (warm, t_warm) = timed(|| audit_ctx(&suite, &opts));
        expect(
            "the warm re-audit reproduces the cold report verbatim",
            strip(cold.clone()) == strip(warm.clone()),
        );
        expect(
            "the warm re-audit answers inclusion queries from the memo",
            warm.stats.inclusion_hits > 0,
        );
        warm_beats_cold |= t_warm < t_cold;
        let findings = cold.all_diagnostics().len();
        println!(
            "{n:>6} {t_cold:>12.3} {t_warm:>12.3} {:>12} {:>10} {findings:>10}",
            cold.prefilter.oracle_calls, warm.stats.inclusion_hits
        );
        rows.push((
            n,
            t_cold,
            t_warm,
            cold.prefilter.oracle_calls,
            warm.stats.inclusion_hits,
            findings,
        ));
    }
    expect(
        "a warm re-audit beats the cold audit somewhere",
        warm_beats_cold,
    );

    // --- The canonical-hash prefilter on a duplicate-heavy suite: 16
    //     bisimilar copies of one machine among 4 distinct others. Every
    //     in-group pair is decided by hash alone; without the prefilter
    //     the subsumption matrix alone would spend 2·pairs directed
    //     oracle runs.
    let (base, _) = random::random_streett(&mut rng, &sigma, 8, 1, 0.3);
    let copies = if smoke { 8 } else { 16 };
    let distinct = if smoke { 2 } else { 4 };
    let mut members: Vec<(String, OmegaAutomaton)> = (0..copies)
        .map(|i| (format!("copy{i}"), base.clone()))
        .collect();
    members.extend(random_suite(&mut rng, &sigma, distinct));
    let suite: Vec<(String, Analysis)> = members
        .iter()
        .map(|(name, aut)| (name.clone(), Analysis::new(aut.clone())))
        .collect();
    let (dup_audit, t_dup) = timed(|| audit_ctx(&suite, &opts));
    let p = dup_audit.prefilter;
    println!(
        "\nduplicate-heavy suite (n={}): pairs {} hash-decided {} oracle calls {} ({t_dup:.3} ms)",
        members.len(),
        p.pairs,
        p.hash_decided,
        p.oracle_calls
    );
    expect(
        "the prefilter decides the majority of pairs by hash",
        p.hash_decided * 2 > p.pairs,
    );
    expect(
        "prefiltered oracle calls stay below the undirected pair count",
        p.oracle_calls < p.pairs,
    );
    expect(
        "every copy joins the first member's language class",
        (0..copies).all(|i| dup_audit.representative[i] == 0),
    );

    // --- Suite-size scaling, sequential vs the worker pool. The report
    //     must not depend on the worker count; only the wall time may.
    let scale_sizes: &[usize] = if smoke { &[6] } else { &[8, 16, 32] };
    let mut scaling = Vec::new();
    println!(
        "\n{:>6} {:>12} {:>12} {:>12}",
        "n", "jobs1 ms", "jobs2 ms", "oracle"
    );
    for &n in scale_sizes {
        let members = random_suite(&mut rng, &sigma, n);
        let suites: Vec<Vec<(String, Analysis)>> = (0..2)
            .map(|_| {
                members
                    .iter()
                    .map(|(name, aut)| (name.clone(), Analysis::new(aut.clone())))
                    .collect()
            })
            .collect();
        let opts1 = AuditOptions {
            jobs: 1,
            ..AuditOptions::default()
        };
        let opts2 = AuditOptions {
            jobs: 2,
            ..AuditOptions::default()
        };
        let (seq, t1) = timed(|| audit_ctx(&suites[0], &opts1));
        let (par, t2) = timed(|| audit_ctx(&suites[1], &opts2));
        expect(
            "the worker pool never changes the audit report",
            strip(seq.clone()) == strip(par),
        );
        println!(
            "{n:>6} {t1:>12.3} {t2:>12.3} {:>12}",
            seq.prefilter.oracle_calls
        );
        scaling.push((n, t1, t2, seq.prefilter.oracle_calls));
    }

    if smoke {
        println!("\nTAB-AUDIT smoke complete (JSON artifact skipped).");
        return;
    }

    let mut json = String::from("{\n  \"experiment\": \"TAB-AUDIT\",\n  \"cold_vs_warm\": [\n");
    for (i, (n, t_cold, t_warm, oracle, hits, findings)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"suite\": {n}, \"cold_ms\": {t_cold:.3}, \"warm_ms\": {t_warm:.3}, \
             \"oracle_calls\": {oracle}, \"warm_memo_hits\": {hits}, \"findings\": {findings}}}{sep}"
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"prefilter\": {{\"suite\": {}, \"pairs\": {}, \"hash_decided\": {}, \
         \"oracle_calls\": {}, \"audit_ms\": {t_dup:.3}}},\n  \"scaling\": [",
        members.len(),
        p.pairs,
        p.hash_decided,
        p.oracle_calls
    );
    for (i, (n, t1, t2, oracle)) in scaling.iter().enumerate() {
        let sep = if i + 1 == scaling.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"suite\": {n}, \"jobs1_ms\": {t1:.3}, \"jobs2_ms\": {t2:.3}, \
             \"oracle_calls\": {oracle}}}{sep}"
        );
    }
    json.push_str("  ]\n}\n");
    let out = "BENCH_audit.json";
    std::fs::write(out, &json).expect("write BENCH_audit.json");
    println!("\nwrote {out}");
    println!("\nTAB-AUDIT complete (warm audits ride the memoized inclusion matrix).");
}
