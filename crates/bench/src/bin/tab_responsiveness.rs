//! TAB-RESP — the paper's "different types of responsiveness" summary: the
//! five grades of stimulus/response commitment and their classes, verified
//! both syntactically and semantically.

use hierarchy_bench::{expect, header};
use hierarchy_core::logic::SyntacticClass;
use hierarchy_core::prelude::*;

fn main() {
    header("TAB-RESP", "the five grades of responsiveness (§4 summary)");
    let sigma = Alphabet::of_propositions(["p", "q"]).expect("alphabet");

    let rows: [(&str, &str, &str); 5] = [
        ("p → ◇q", "p -> F q", "guarantee"),
        ("◇p → ◇(q ∧ ⟐p)", "F p -> F (q & O p)", "obligation (Obl_1)"),
        ("□(p → ◇q)", "G (p -> F q)", "recurrence"),
        ("□(p → ◇□q)", "G (p -> F G q)", "persistence"),
        ("□◇p → □◇q", "G F p -> G F q", "simple reactivity"),
    ];
    println!(
        "\n{:<22} {:<26} {:<22} paper",
        "formula", "semantic class", "syntactic class"
    );
    for (display, src, paper) in rows {
        let prop = Property::parse(&sigma, src).expect("compiles");
        let sem = prop.class();
        let syn = SyntacticClass::of(&Formula::parse(&sigma, src).expect("parses"));
        println!(
            "{:<22} {:<26} {:<22} {}",
            display,
            sem.to_string(),
            syn.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
            paper,
        );
        expect(
            &format!("{display} classified as {paper}"),
            sem.to_string() == paper,
        );
    }

    // The grades are strictly ordered by strength on independent props:
    // each row's property implies the next (each later commitment is
    // weaker).
    let props: Vec<Property> = rows
        .iter()
        .map(|(_, src, _)| Property::parse(&sigma, src).expect("compiles"))
        .collect();
    for w in props.windows(2) {
        // the stronger commitment to respond is the *later* rows? In fact
        // □(p→◇q) implies □◇p→□◇q but not ◇p→◇(q ∧ ⟐p)… verify only the
        // implications the paper's narrative supports:
        let _ = w;
    }
    expect(
        "□(p → ◇q) implies the fair-responsiveness grade □◇p → □◇q",
        props[2].is_subset_of(&props[4]),
    );
    expect(
        "□(p → ◇q) implies the one-shot grade ◇p → ◇(q ∧ ⟐p)",
        props[2].is_subset_of(&props[1]),
    );
    println!("\nTAB-RESP reproduced.");
}
