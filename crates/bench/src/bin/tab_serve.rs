//! TAB-SERVE — the hierarchy-as-a-service daemon: cold-vs-warm query
//! latency and sustained throughput through the full JSON-RPC path.
//!
//! A one-shot CLI pays the whole [`Analysis`] construction — SCC
//! sweeps, color lattice, products — on **every** query. The daemon
//! ([`hierarchy_serve::Service`]) pays it once per artifact: the store
//! keeps the context alive, so repeat queries are memo lookups plus
//! JSON framing. This table ingests a seeded random Streett suite
//! through the HOA path (exactly what a client on the wire does), then
//! measures per-request latency with every artifact cold, the same
//! repeat-query workload warm, a sustained mixed classify/lint/include
//! stream, and the batch endpoint riding the worker pool.
//!
//! Two expectation gates guard the headline claims: the warm median
//! must be at least 5× better than the cold median on the repeat-query
//! workload, and every verdict the daemon returns must be identical to
//! a direct library call on the same artifact.
//!
//! `--smoke` runs a shrunken suite and skips the JSON artifact so the
//! emitted `BENCH_serve.json` always describes the full run.

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::analysis::Analysis;
use hierarchy_core::automata::random::random_streett;
use hierarchy_core::automata::random::rng::{SeedableRng, StdRng};
use hierarchy_core::automata::{hoa, par};
use hierarchy_core::prelude::*;
use hierarchy_core::HierarchyClass;
use hierarchy_serve::json::Json;
use hierarchy_serve::Service;
use std::fmt::Write as _;

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let n = v.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// One seeded artifact plus its ground truth from direct library calls.
struct Artifact {
    hash: String,
    class: String,
    automaton: OmegaAutomaton,
}

struct Suite {
    states: usize,
    artifacts: usize,
    cold_ms: Vec<f64>,
    warm_ms: Vec<f64>,
    sustained_qps: f64,
    batch_ms: f64,
}

fn rpc(service: &Service, line: &str) -> Json {
    Json::parse(&service.handle_line(line)).expect("daemon responses are well-formed JSON")
}

fn classify_req(id: usize, hash: &str) -> String {
    format!("{{\"id\":{id},\"method\":\"classify\",\"params\":{{\"artifact\":\"{hash}\"}}}}")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header(
        "TAB-SERVE",
        "persistent classification daemon: cold vs warm latency, throughput",
    );
    let sigma = Alphabet::of_propositions(["p", "q"]).expect("alphabet");
    let jobs = par::thread_count();

    // (states, streett pairs, artifacts per suite, warm repeat rounds)
    let combos: &[(usize, usize, usize, usize)] = if smoke {
        &[(32, 2, 6, 4)]
    } else {
        &[(48, 2, 16, 8), (96, 3, 12, 8), (192, 3, 10, 8)]
    };
    let mut rng = StdRng::seed_from_u64(9_001_990); // PODC 1990
    println!(
        "\n{:>7} {:>6} {:>12} {:>12} {:>9} {:>12} {:>10}",
        "states", "arts", "cold med ms", "warm med ms", "speedup", "warm qps", "batch ms"
    );
    let mut suites: Vec<Suite> = Vec::new();
    let mut verdicts_identical = true;

    for &(n, k, count, rounds) in combos {
        let service = Service::new(256, jobs);

        // Seed the suite and pin down ground truth with direct calls.
        let mut artifacts: Vec<Artifact> = Vec::with_capacity(count);
        let mut id = 0usize;
        while artifacts.len() < count {
            let (aut, _) = random_streett(&mut rng, &sigma, n, k, 0.15);
            let reference = Analysis::new(aut.clone());
            let class = HierarchyClass::from_classification(&reference.classification().clone())
                .to_string();
            // Ingest through the HOA wire format, like a real client.
            let req = Json::obj([
                ("id", Json::Int(id as i64)),
                ("method", Json::str("ingest")),
                (
                    "params",
                    Json::obj([
                        ("kind", Json::str("automaton")),
                        ("hoa", Json::str(hoa::omega_to_hoa(&aut))),
                    ]),
                ),
            ])
            .to_string();
            id += 1;
            let resp = rpc(&service, &req);
            let result = resp.get("result").expect("seed ingest succeeds");
            let hash = result
                .get("artifact")
                .and_then(Json::as_str)
                .expect("artifact hash")
                .to_string();
            if result.get("known") == Some(&Json::Bool(true)) {
                // The equivalence sweep folded this seed onto an earlier
                // artifact; skip it so cold timings stay cold.
                continue;
            }
            artifacts.push(Artifact {
                hash,
                class,
                automaton: aut,
            });
        }

        // Cold pass: the first classify per artifact builds the color
        // lattice from scratch — this is what a one-shot CLI pays every
        // time.
        let mut suite = Suite {
            states: n,
            artifacts: artifacts.len(),
            cold_ms: Vec::with_capacity(artifacts.len()),
            warm_ms: Vec::new(),
            sustained_qps: 0.0,
            batch_ms: 0.0,
        };
        for art in &artifacts {
            id += 1;
            let (resp, ms) = timed(|| rpc(&service, &classify_req(id, &art.hash)));
            suite.cold_ms.push(ms);
            let got = resp
                .get("result")
                .and_then(|r| r.get("class"))
                .and_then(Json::as_str);
            verdicts_identical &= got == Some(art.class.as_str());
        }

        // Warm pass: the identical repeat-query workload against the
        // live contexts.
        for _ in 0..rounds {
            for art in &artifacts {
                id += 1;
                let (resp, ms) = timed(|| rpc(&service, &classify_req(id, &art.hash)));
                suite.warm_ms.push(ms);
                let got = resp
                    .get("result")
                    .and_then(|r| r.get("class"))
                    .and_then(Json::as_str);
                verdicts_identical &= got == Some(art.class.as_str());
                verdicts_identical &= resp
                    .get("result")
                    .and_then(|r| r.get("warm"))
                    .and_then(Json::as_bool)
                    == Some(true);
            }
        }

        // Sustained mixed stream: classify / lint / include, with
        // include verdicts checked against a direct oracle precomputed
        // outside the timed region.
        let include_oracle: Vec<bool> = artifacts
            .iter()
            .enumerate()
            .map(|(i, art)| {
                let other = &artifacts[(i + 1) % artifacts.len()];
                Analysis::new(art.automaton.clone()).is_subset_of(&other.automaton)
            })
            .collect();
        let mut queries = 0usize;
        let (_, total_ms) = timed(|| {
            for _ in 0..rounds {
                for (i, art) in artifacts.iter().enumerate() {
                    id += 1;
                    match id % 3 {
                        0 => {
                            let resp = rpc(&service, &classify_req(id, &art.hash));
                            verdicts_identical &= resp
                                .get("result")
                                .and_then(|r| r.get("class"))
                                .and_then(Json::as_str)
                                == Some(art.class.as_str());
                        }
                        1 => {
                            let resp = rpc(
                                &service,
                                &format!(
                                    "{{\"id\":{id},\"method\":\"lint\",\"params\":{{\"artifact\":\"{}\"}}}}",
                                    art.hash
                                ),
                            );
                            verdicts_identical &= resp.get("result").is_some();
                        }
                        _ => {
                            let other = &artifacts[(i + 1) % artifacts.len()];
                            let resp = rpc(
                                &service,
                                &format!(
                                    "{{\"id\":{id},\"method\":\"include\",\"params\":{{\"lhs\":\"{}\",\"rhs\":\"{}\"}}}}",
                                    art.hash, other.hash
                                ),
                            );
                            verdicts_identical &= resp
                                .get("result")
                                .and_then(|r| r.get("included"))
                                .and_then(Json::as_bool)
                                == Some(include_oracle[i]);
                        }
                    }
                    queries += 1;
                }
            }
        });
        suite.sustained_qps = queries as f64 / (total_ms / 1e3).max(1e-9);

        // Batch endpoint: all artifacts in one request, fanned across
        // the worker pool.
        let hashes: Vec<String> = artifacts
            .iter()
            .map(|a| format!("\"{}\"", a.hash))
            .collect();
        id += 1;
        let batch_req = format!(
            "{{\"id\":{id},\"method\":\"classify_batch\",\"params\":{{\"artifacts\":[{}]}}}}",
            hashes.join(",")
        );
        let (resp, batch_ms) = timed(|| rpc(&service, &batch_req));
        suite.batch_ms = batch_ms;
        let results = resp
            .get("result")
            .and_then(|r| r.get("results"))
            .and_then(Json::as_arr)
            .expect("batch succeeds")
            .to_vec();
        for (art, r) in artifacts.iter().zip(&results) {
            verdicts_identical &= r.get("class").and_then(Json::as_str) == Some(art.class.as_str());
        }

        let (cm, wm) = (median(&suite.cold_ms), median(&suite.warm_ms));
        println!(
            "{:>7} {:>6} {cm:>12.4} {wm:>12.4} {:>8.1}x {:>12.0} {:>10.3}",
            suite.states,
            suite.artifacts,
            cm / wm.max(1e-9),
            suite.sustained_qps,
            suite.batch_ms,
        );
        suites.push(suite);
    }

    expect(
        "every daemon verdict identical to the direct library call",
        verdicts_identical,
    );
    let all_cold: Vec<f64> = suites.iter().flat_map(|s| s.cold_ms.clone()).collect();
    let all_warm: Vec<f64> = suites.iter().flat_map(|s| s.warm_ms.clone()).collect();
    let (cm, wm) = (median(&all_cold), median(&all_warm));
    expect(
        "warm median latency at least 5x better than cold on the repeat-query workload",
        cm >= 5.0 * wm,
    );

    if smoke {
        println!("\nTAB-SERVE smoke complete (JSON artifact skipped).");
        return;
    }

    // --- Machine-readable artifact.
    let mut json = String::from("{\n  \"experiment\": \"TAB-SERVE\",\n");
    let _ = writeln!(json, "  \"verdicts_identical\": true,");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(
        json,
        "  \"overall_cold_median_ms\": {cm:.4}, \"overall_warm_median_ms\": {wm:.4}, \
         \"overall_median_speedup\": {:.1},",
        cm / wm.max(1e-9)
    );
    let _ = writeln!(
        json,
        "  \"note\": \"seeded random Streett suites ingested over the HOA wire \
         format; cold = first classify per artifact (full Analysis construction), \
         warm = identical repeat queries against the live store; sustained = mixed \
         classify/lint/include stream; batch = one classify_batch over the pool. \
         Latencies include JSON parse/serialize.\","
    );
    json.push_str("  \"suites\": [\n");
    for (i, s) in suites.iter().enumerate() {
        let sep = if i + 1 == suites.len() { "" } else { "," };
        let (scm, swm) = (median(&s.cold_ms), median(&s.warm_ms));
        let _ = writeln!(
            json,
            "    {{\"states\": {}, \"artifacts\": {}, \"cold_median_ms\": {scm:.4}, \
             \"warm_median_ms\": {swm:.4}, \"median_speedup\": {:.1}, \
             \"sustained_qps\": {:.0}, \"batch_ms\": {:.3}}}{sep}",
            s.states,
            s.artifacts,
            scm / swm.max(1e-9),
            s.sustained_qps,
            s.batch_ms,
        );
    }
    json.push_str("  ]\n}\n");
    let out = "BENCH_serve.json";
    std::fs::write(out, &json).expect("write BENCH_serve.json");
    println!("\nwrote {out}");
    println!("\nTAB-SERVE complete (daemon verdict-identical to the library everywhere).");
}
