//! TAB-PAR — thread-scaling of the parallel classification engine: the
//! batch suite (`classify_suite_with`, one automaton per work item) and
//! the in-automaton color-lattice sweep (`HIERARCHY_THREADS` workers
//! sharing one `Analysis` context), both asserted verdict-identical to
//! the sequential classifier at every thread count.
//!
//! Emits `BENCH_parallel.json` with the scaling series. Speedups are
//! measured wall-clock, so they are only meaningful on multi-core hosts;
//! `host_cores` is recorded alongside so a single-core container's
//! degenerate series is not mistaken for a regression (the ≥2× @ 4
//! threads expectation is asserted only when the host has ≥ 4 cores).

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::automata::analysis::Analysis;
use hierarchy_core::automata::classify;
use hierarchy_core::automata::omega::OmegaAutomaton;
use hierarchy_core::automata::random;
use hierarchy_core::automata::random::rng::{SeedableRng, StdRng};
use std::fmt::Write as _;

fn main() {
    header(
        "TAB-PAR",
        "thread-scaling of the parallel classification engine",
    );
    let sigma = Alphabet::new(["a", "b"]).expect("alphabet");
    let mut rng = StdRng::seed_from_u64(271_828);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host cores: {host_cores}");

    // 1 / 2 / 4 / N workers, N = the host's parallelism (deduplicated).
    let mut series = vec![1usize, 2, 4, host_cores];
    series.sort_unstable();
    series.dedup();

    // --- Batch suites: (states, pairs) × batch size, classified through
    //     classify_suite_with at each worker count. The 256-state/4-pair
    //     row is the acceptance-criterion suite.
    let combos = [(64usize, 2usize, 32usize), (128, 4, 24), (256, 4, 24)];
    let mut batch_rows = Vec::new();
    let mut speedup_at_4_on_256 = None;
    println!(
        "\n{:>7} {:>6} {:>6} {:>8} {:>12} {:>9}",
        "states", "pairs", "batch", "threads", "suite ms", "speedup"
    );
    for &(n, k, batch) in &combos {
        let auts: Vec<OmegaAutomaton> = (0..batch)
            .map(|_| random::random_streett(&mut rng, &sigma, n, k, 0.2).0)
            .collect();
        let (baseline, t1) = timed(|| classify::classify_suite_with(1, &auts));
        for &threads in &series {
            let (verdicts, ms) = if threads == 1 {
                (baseline.clone(), t1)
            } else {
                timed(|| classify::classify_suite_with(threads, &auts))
            };
            expect(
                "batch verdicts are identical to the sequential classifier",
                verdicts == baseline,
            );
            let speedup = t1 / ms;
            println!("{n:>7} {k:>6} {batch:>6} {threads:>8} {ms:>12.3} {speedup:>8.2}x");
            if n == 256 && threads == 4 {
                speedup_at_4_on_256 = Some(speedup);
            }
            batch_rows.push((n, k, batch, threads, ms, speedup));
        }
    }

    // --- In-automaton sweep: one large automaton, the 2^m lattice points
    //     fanned out across HIERARCHY_THREADS workers sharing a single
    //     fresh Analysis context per run.
    let (big, _) = random::random_streett(&mut rng, &sigma, 256, 4, 0.2);
    let budget = 1u64 << big.acceptance().atom_sets().len();
    let mut sweep_rows = Vec::new();
    let mut sweep_baseline = None;
    println!(
        "\n{:>7} {:>6} {:>8} {:>12} {:>10} {:>10}",
        "states", "pairs", "threads", "classify ms", "scc pass", "budget"
    );
    for &threads in &series {
        std::env::set_var("HIERARCHY_THREADS", threads.to_string());
        let ctx = Analysis::new(big.clone());
        let (verdict, ms) = timed(|| ctx.classification().clone());
        // stats_total: with the quotient-first pipeline the lattice walk
        // runs inside the quotient context — count its passes too.
        let passes = ctx.stats_total().scc_passes;
        expect(
            "the parallel sweep stays within the 2^m lattice pass budget",
            passes <= budget,
        );
        let baseline = sweep_baseline.get_or_insert_with(|| verdict.clone());
        expect(
            "sweep verdicts are identical to the sequential sweep",
            verdict == *baseline,
        );
        println!(
            "{:>7} {:>6} {threads:>8} {ms:>12.3} {passes:>10} {budget:>10}",
            256, 4
        );
        sweep_rows.push((threads, ms, passes));
    }
    std::env::remove_var("HIERARCHY_THREADS");

    // --- Scaling expectation: wall-clock speedup needs physical cores.
    match speedup_at_4_on_256 {
        Some(speedup) if host_cores >= 4 => expect(
            "≥2x speedup at 4 threads on the 256-state/4-pair batch suite",
            speedup >= 2.0,
        ),
        Some(speedup) => println!(
            "  [--] host has {host_cores} core(s): 4-thread speedup {speedup:.2}x \
             recorded without the multi-core ≥2x assertion"
        ),
        None => unreachable!("the 256-state suite always runs at 4 threads"),
    }

    // --- Machine-readable artifact.
    let mut json = String::from("{\n  \"experiment\": \"TAB-PAR\",\n");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"verdicts_identical\": true,");
    json.push_str("  \"batch_suite\": [\n");
    for (i, (n, k, batch, threads, ms, speedup)) in batch_rows.iter().enumerate() {
        let sep = if i + 1 == batch_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"states\": {n}, \"pairs\": {k}, \"batch\": {batch}, \
             \"threads\": {threads}, \"suite_ms\": {ms:.3}, \
             \"speedup_vs_1\": {speedup:.3}}}{sep}"
        );
    }
    json.push_str("  ],\n  \"lattice_sweep\": [\n");
    for (i, (threads, ms, passes)) in sweep_rows.iter().enumerate() {
        let sep = if i + 1 == sweep_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"states\": 256, \"pairs\": 4, \"threads\": {threads}, \
             \"classify_ms\": {ms:.3}, \"scc_passes\": {passes}, \
             \"pass_budget\": {budget}}}{sep}"
        );
    }
    json.push_str("  ]\n}\n");
    let out = "BENCH_parallel.json";
    std::fs::write(out, &json).expect("write BENCH_parallel.json");
    println!("\nwrote {out}");
    println!("\nTAB-PAR complete (parallel engine verdict-identical at every thread count).");
}
