//! TAB-EX — the paper's §2 running examples: the four operator
//! applications and the non-membership results used in the text.

use hierarchy_bench::{expect, header};
use hierarchy_core::automata::classify;
use hierarchy_core::automata::prelude::*;
use hierarchy_core::lang::{operators, witnesses, FinitaryProperty};

fn main() {
    header("TAB-EX", "§2 running examples of the four operators");
    let sigma = Alphabet::new(["a", "b"]).expect("alphabet");
    let phi = FinitaryProperty::parse(&sigma, "aa*b*").expect("regex"); // a⁺b*
    let sb = FinitaryProperty::parse(&sigma, ".*b").expect("regex"); // Σ*b

    println!("\n{:<28} {:<22} paper says", "language", "classified as");
    let cases: Vec<(&str, OmegaAutomaton, &str)> = vec![
        ("A(a⁺b*) = a^ω + a⁺b^ω", operators::a(&phi), "safety"),
        ("E(a⁺b*) = a⁺b*·Σ^ω", operators::e(&phi), "guarantee"),
        ("R(Σ*b) = (Σ*b)^ω", operators::r(&sb), "recurrence"),
        ("P(Σ*b) = Σ*b^ω", operators::p(&sb), "persistence"),
    ];
    for (name, aut, paper) in &cases {
        let c = classify::classify(aut);
        println!("{:<28} {:<22} {}", name, c.strictest_class_name(), paper);
    }
    println!();

    let a_phi = classify::classify(&operators::a(&phi));
    expect("A(a⁺b*) is a safety property", a_phi.is_safety);
    let e_phi = classify::classify(&operators::e(&phi));
    expect("E(a⁺b*) is a guarantee property", e_phi.is_guarantee);
    expect(
        "…and over Σ = {a,b} it is clopen (erratum: also safety — it is a·Σ^ω)",
        e_phi.is_safety,
    );
    let r_sb = classify::classify(&operators::r(&sb));
    expect(
        "R(Σ*b) is recurrence and nothing lower",
        r_sb.is_recurrence && !r_sb.is_obligation && !r_sb.is_safety && !r_sb.is_guarantee,
    );
    let p_sb = classify::classify(&operators::p(&sb));
    expect(
        "P(Σ*b) is persistence and nothing lower",
        p_sb.is_persistence && !p_sb.is_obligation,
    );

    // The §2 non-membership arguments:
    // (a*b)^ω is not safety: Pref = (a+b)⁺ and A(Pref) = (a+b)^ω ≠ Π.
    let rec = witnesses::recurrence();
    let safety_closure = classify::safety_closure(&rec);
    expect(
        "(a*b)^ω ≠ A(Pref((a*b)^ω)) = Σ^ω",
        safety_closure.is_universal() && !rec.equivalent(&safety_closure),
    );
    // (a*b)^ω is not a guarantee property either.
    expect("(a*b)^ω is not guarantee", !r_sb.is_guarantee);
    // (a+b)*a^ω is persistence, in neither safety nor guarantee.
    let pa = classify::classify(&witnesses::persistence_a());
    expect(
        "(a+b)*a^ω is persistence, not safety/guarantee/obligation",
        pa.is_persistence && !pa.is_safety && !pa.is_guarantee && !pa.is_obligation,
    );
    // The two big witnesses are mutual complements.
    expect(
        "(a*b)^ω and (a+b)*a^ω are complements (R/P duality)",
        witnesses::recurrence()
            .complement()
            .equivalent(&witnesses::persistence_a()),
    );
    // Inclusion equalities A(Φ)=R(A_f(Φ)), E(Φ)=R(E_f(Φ)), and P-duals.
    expect(
        "A(Φ) = R(A_f(Φ))",
        operators::a(&phi).equivalent(&operators::r(&phi.a_f())),
    );
    expect(
        "E(Φ) = R(E_f(Φ))",
        operators::e(&phi).equivalent(&operators::r(&phi.e_f())),
    );
    expect(
        "A(Φ) = P(A_f(Φ))",
        operators::a(&phi).equivalent(&operators::p(&phi.a_f())),
    );
    expect(
        "E(Φ) = P(E_f(Φ))",
        operators::e(&phi).equivalent(&operators::p(&phi.e_f())),
    );

    // The first-order characterization χ_O^Φ (end of §2) agrees with the
    // operators on sampled lassos.
    {
        use hierarchy_core::automata::random::random_lasso;
        use hierarchy_core::automata::random::rng::SeedableRng;
        use hierarchy_core::automata::random::rng::StdRng;
        use hierarchy_core::lang::firstorder;
        let mut rng = StdRng::seed_from_u64(2);
        let (a_aut, e_aut, r_aut, p_aut) = (
            operators::a(&sb),
            operators::e(&sb),
            operators::r(&sb),
            operators::p(&sb),
        );
        let mut agree = true;
        for _ in 0..200 {
            let w = random_lasso(&mut rng, &sigma, 4, 4);
            agree &= firstorder::chi_a(&sb, &w) == a_aut.accepts(&w);
            agree &= firstorder::chi_e(&sb, &w) == e_aut.accepts(&w);
            agree &= firstorder::chi_r(&sb, &w) == r_aut.accepts(&w);
            agree &= firstorder::chi_p(&sb, &w) == p_aut.accepts(&w);
        }
        expect("first-order χ_O^Φ formulas agree with the operators", agree);
    }
    println!("\nTAB-EX reproduced.");
}
