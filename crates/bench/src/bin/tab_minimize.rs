//! TAB-MIN — the quotient-first pipeline: partition-refinement
//! minimization (`hierarchy_automata::minimize`) under every hot path of
//! the classifier, measured against the raw walk.
//!
//! Two workloads, both verdict-asserted raw-vs-quotient:
//!
//! * **Paper formulas** — the §2/§4 modalities and response/fairness
//!   formulas, compiled through the *raw* temporal tester
//!   (`compile_raw_over`). The tester tracks every past subformula, so
//!   distinct states frequently carry the same residual language; this
//!   is where the quotient earns its keep on real paper inputs.
//! * **Seeded random Streett suites** — the usual `random_streett`
//!   batches at 64/128/256 states.
//!
//! A structural finding this experiment documents: the *number* of SCC
//! passes is invariant under the quotient. The minimizer seeds its
//! partition with acceptance-atom signatures, so every occupied color
//! set of the lattice walk stays occupied in the quotient — the walk
//! visits the same lattice points and runs the same number of Tarjan
//! passes, each over strictly fewer states. The honest per-pass saving
//! is therefore the `scc_state_visits` counter (states swept per pass,
//! summed), which this table reports next to the raw pass counts.
//!
//! `--smoke` runs the full formula set and a shrunken random suite, and
//! skips the JSON artifact so the committed `BENCH_minimize.json` always
//! describes the full run.

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::analysis::{Analysis, AnalysisStats};
use hierarchy_core::automata::classify::Classification;
use hierarchy_core::automata::omega::OmegaAutomaton;
use hierarchy_core::automata::prelude::*;
use hierarchy_core::automata::random::random_streett;
use hierarchy_core::automata::random::rng::{SeedableRng, StdRng};
use hierarchy_core::logic::to_automaton::compile_raw_over;
use hierarchy_core::logic::Formula;
use std::fmt::Write as _;

/// One raw-vs-quotient measurement of `classification()` end to end
/// (context construction — including the minimization itself on the
/// quotient side — plus the lattice walk).
struct Row {
    states_before: usize,
    states_after: usize,
    raw: AnalysisStats,
    quot: AnalysisStats,
    raw_ms: f64,
    quot_ms: f64,
    verdicts_equal: bool,
}

fn measure(aut: &OmegaAutomaton) -> Row {
    let ((raw_ctx, raw_verdict), raw_ms) = timed(|| {
        let ctx = Analysis::new_raw(aut.clone());
        let v: Classification = ctx.classification().clone();
        (ctx, v)
    });
    let ((quot_ctx, quot_verdict), quot_ms) = timed(|| {
        let ctx = Analysis::new(aut.clone());
        let v: Classification = ctx.classification().clone();
        (ctx, v)
    });
    Row {
        states_before: aut.num_states(),
        states_after: quot_ctx.minimization().quotient.num_states(),
        raw: raw_ctx.stats(),
        quot: quot_ctx.stats_total(),
        raw_ms,
        quot_ms,
        verdicts_equal: raw_verdict == quot_verdict,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header(
        "TAB-MIN",
        "partition-refinement quotient under the classification pipeline",
    );
    let ab = Alphabet::new(["a", "b"]).expect("alphabet");
    let abc = Alphabet::new(["a", "b", "c"]).expect("alphabet");

    // --- Paper formulas through the raw tester.
    let formulas: [(&str, &Alphabet); 11] = [
        ("G a", &ab),
        ("F b", &ab),
        ("G F b", &ab),
        ("F G a", &ab),
        ("G (b -> Y a)", &ab),
        ("F (b & Y H a)", &ab),
        ("G (a -> F b)", &ab),
        ("a -> G b", &ab),
        ("a W b", &ab),
        ("G F a -> G F b", &abc),
        ("G (c -> (Y a | Y b))", &abc),
    ];
    println!(
        "\n{:<24} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8} {:>9} {:>9}",
        "formula (raw tester)",
        "st_raw",
        "st_quo",
        "pass_r",
        "pass_q",
        "sweep_r",
        "sweep_q",
        "raw ms",
        "quo ms"
    );
    let mut paper_rows: Vec<(&str, Row)> = Vec::new();
    let mut all_verdicts_equal = true;
    let mut all_states_strict = true;
    let mut all_sweeps_strict = true;
    let mut passes_never_worse = true;
    for (src, sigma) in formulas {
        let f = Formula::parse(sigma, src).expect("paper formula parses");
        let tester = compile_raw_over(sigma, &f).expect("paper formula compiles");
        let row = measure(&tester);
        println!(
            "{src:<24} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8} {:>9.4} {:>9.4}",
            row.states_before,
            row.states_after,
            row.raw.scc_passes,
            row.quot.scc_passes,
            row.raw.scc_state_visits,
            row.quot.scc_state_visits,
            row.raw_ms,
            row.quot_ms
        );
        all_verdicts_equal &= row.verdicts_equal;
        all_states_strict &= row.states_after < row.states_before;
        all_sweeps_strict &= row.quot.scc_state_visits < row.raw.scc_state_visits;
        passes_never_worse &= row.quot.scc_passes <= row.raw.scc_passes;
        paper_rows.push((src, row));
    }
    expect(
        "paper-formula verdicts are identical raw vs quotient-first",
        all_verdicts_equal,
    );
    expect(
        "the quotient strictly reduces states on every paper formula",
        all_states_strict,
    );
    expect(
        "the quotient strictly reduces the states swept by SCC passes on every paper formula",
        all_sweeps_strict,
    );
    expect(
        "quotient-first runs no more SCC passes than the raw walk",
        passes_never_worse,
    );

    // --- Seeded random Streett suites.
    let combos: &[(usize, usize, f64, usize)] = if smoke {
        &[(64, 2, 0.1, 3)]
    } else {
        &[(64, 2, 0.1, 8), (128, 3, 0.1, 6), (256, 4, 0.05, 6)]
    };
    let mut rng = StdRng::seed_from_u64(1_618_033);
    println!(
        "\n{:>7} {:>6} {:>8} {:>6} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "states",
        "pairs",
        "density",
        "batch",
        "st_raw",
        "st_quo",
        "sweep_r",
        "sweep_q",
        "raw ms",
        "quo ms"
    );
    let mut suite_rows = Vec::new();
    for &(n, k, p, batch) in combos {
        let mut agg = Row {
            states_before: 0,
            states_after: 0,
            raw: AnalysisStats::default(),
            quot: AnalysisStats::default(),
            raw_ms: 0.0,
            quot_ms: 0.0,
            verdicts_equal: true,
        };
        for _ in 0..batch {
            let (aut, _) = random_streett(&mut rng, &ab, n, k, p);
            let row = measure(&aut);
            agg.states_before += row.states_before;
            agg.states_after += row.states_after;
            agg.raw.scc_passes += row.raw.scc_passes;
            agg.raw.scc_state_visits += row.raw.scc_state_visits;
            agg.quot.scc_passes += row.quot.scc_passes;
            agg.quot.scc_state_visits += row.quot.scc_state_visits;
            agg.raw_ms += row.raw_ms;
            agg.quot_ms += row.quot_ms;
            agg.verdicts_equal &= row.verdicts_equal;
        }
        println!(
            "{n:>7} {k:>6} {p:>8} {batch:>6} {:>9} {:>9} {:>9} {:>9} {:>10.3} {:>10.3}",
            agg.states_before,
            agg.states_after,
            agg.raw.scc_state_visits,
            agg.quot.scc_state_visits,
            agg.raw_ms,
            agg.quot_ms
        );
        expect(
            "seeded-suite verdicts are identical raw vs quotient-first",
            agg.verdicts_equal,
        );
        expect(
            "the quotient strictly reduces total suite states",
            agg.states_after < agg.states_before,
        );
        // On sparse random Streett automata most of the state reduction
        // is unreachable or dead states, which the raw lattice walk never
        // sweeps either — so sweeps can tie exactly. Non-increase is the
        // honest invariant here; the strict claim belongs to the paper
        // formulas above, where the tester's redundancy is live.
        expect(
            "the quotient never increases total states swept by SCC passes",
            agg.quot.scc_state_visits <= agg.raw.scc_state_visits,
        );
        suite_rows.push((n, k, p, batch, agg));
    }

    if smoke {
        println!("\nTAB-MIN smoke complete (JSON artifact skipped).");
        return;
    }

    // --- Machine-readable artifact.
    let mut json = String::from("{\n  \"experiment\": \"TAB-MIN\",\n");
    let _ = writeln!(json, "  \"verdicts_identical\": true,");
    let _ = writeln!(
        json,
        "  \"note\": \"SCC pass *count* is invariant under the signature-seeded \
         quotient (the occupied color lattice is preserved); each pass sweeps \
         strictly fewer states, reported as scc_pass_state_visits.\","
    );
    json.push_str("  \"paper_formulas\": [\n");
    for (i, (src, r)) in paper_rows.iter().enumerate() {
        let sep = if i + 1 == paper_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"formula\": \"{src}\", \"states_before\": {}, \"states_after\": {}, \
             \"scc_passes_raw\": {}, \"scc_passes_quotient\": {}, \
             \"scc_pass_state_visits_raw\": {}, \"scc_pass_state_visits_quotient\": {}, \
             \"classify_raw_ms\": {:.4}, \"classify_quotient_ms\": {:.4}}}{sep}",
            r.states_before,
            r.states_after,
            r.raw.scc_passes,
            r.quot.scc_passes,
            r.raw.scc_state_visits,
            r.quot.scc_state_visits,
            r.raw_ms,
            r.quot_ms
        );
    }
    json.push_str("  ],\n  \"seeded_streett\": [\n");
    for (i, (n, k, p, batch, agg)) in suite_rows.iter().enumerate() {
        let sep = if i + 1 == suite_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"states\": {n}, \"pairs\": {k}, \"density\": {p}, \"batch\": {batch}, \
             \"states_before_total\": {}, \"states_after_total\": {}, \
             \"scc_passes_raw\": {}, \"scc_passes_quotient\": {}, \
             \"scc_pass_state_visits_raw\": {}, \"scc_pass_state_visits_quotient\": {}, \
             \"classify_raw_ms\": {:.3}, \"classify_quotient_ms\": {:.3}}}{sep}",
            agg.states_before,
            agg.states_after,
            agg.raw.scc_passes,
            agg.quot.scc_passes,
            agg.raw.scc_state_visits,
            agg.quot.scc_state_visits,
            agg.raw_ms,
            agg.quot_ms
        );
    }
    json.push_str("  ]\n}\n");
    let out = "BENCH_minimize.json";
    std::fs::write(out, &json).expect("write BENCH_minimize.json");
    println!("\nwrote {out}");
    println!("\nTAB-MIN complete (quotient-first pipeline verdict-identical everywhere).");
}
