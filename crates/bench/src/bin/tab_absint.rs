//! TAB-ABSINT — invariant-first checking versus explicit product search:
//! for each (program, specification, domain) triple, the explicit product
//! size and wall time against the abstract-interpretation path of
//! `check_with_invariants` (certified invariant, abstract safety
//! discharge, explicit fallback otherwise). The paper's safety rows are
//! where the static proof rule pays off: the property is discharged from
//! the certificate with zero product states — relationally even for
//! Peterson, whose `turn`/`pc` correlation no cartesian domain keeps.
//!
//! The states-vs-N series runs the parameterized process families
//! (`mux_sem_n`, `token_ring_n`, `dining_philosophers`) at growing N:
//! the explicit product grows with N while the invariant-first path
//! stays flat at zero product states — the crossover that makes static
//! analysis the only scaling story.
//!
//! `--smoke` shrinks the random sweep for the tier-1 gate.

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::automata::random::rng::{SeedableRng, StdRng};
use hierarchy_core::fts::absint::{self, analyze, DomainKind, Program};
use hierarchy_core::fts::checker::{check_with_invariants, verify_with_stats, CheckStats, Verdict};
use hierarchy_core::fts::programs;
use hierarchy_core::fts::system::Fairness;
use hierarchy_core::logic::to_automaton::compile_over;
use hierarchy_core::logic::Formula;
use std::fmt::Write as _;

struct Row {
    name: String,
    spec: String,
    domain: DomainKind,
    holds: bool,
    stats: CheckStats,
    explicit_states: usize,
    explicit_ms: f64,
    invfirst_ms: f64,
}

fn run_row(name: &str, prog: &Program, sigma: &Alphabet, spec: &str, kind: DomainKind) -> Row {
    let prop = compile_over(sigma, &Formula::parse(sigma, spec).expect(spec)).expect(spec);
    let ts = prog.to_builder(sigma).build().expect(name);
    let (explicit, t_explicit) = timed(|| verify_with_stats(&ts, &prop).expect(name));
    let (invfirst, t_invfirst) =
        timed(|| check_with_invariants(prog, sigma, &prop, kind).expect(name));
    let (ev, estats) = explicit;
    let (iv, istats) = invfirst;
    expect(
        &format!("{name} / {spec} / {}: verdicts agree", kind.name()),
        ev.holds() == iv.holds(),
    );
    if let (Verdict::Violated(ecex), Verdict::Violated(icex)) = (&ev, &iv) {
        // Both counterexamples must replay; they need not be identical.
        expect(
            &format!("{name} / {spec}: both counterexamples replay"),
            !ecex.cycle.is_empty() && !icex.cycle.is_empty(),
        );
    }
    Row {
        name: name.to_string(),
        spec: spec.to_string(),
        domain: kind,
        holds: iv.holds(),
        stats: istats,
        explicit_states: estats.product_states,
        explicit_ms: t_explicit,
        invfirst_ms: t_invfirst,
    }
}

/// One point of the states-vs-N series.
struct SeriesPoint {
    family: &'static str,
    n: usize,
    domain: DomainKind,
    discharged: bool,
    explicit_states: usize,
    invfirst_states: usize,
    abstract_locations: usize,
}

fn family_program(family: &'static str, n: usize) -> Program {
    match family {
        "mux-sem-n" => absint::mux_sem_n(n),
        "token-ring-n" => absint::token_ring_n(n),
        "dining-phil-n" => absint::dining_philosophers(n),
        other => unreachable!("unknown family {other}"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header(
        "TAB-ABSINT",
        "invariant-first checking vs explicit product search",
    );
    let sigma = programs::observation_alphabet();

    let paper: Vec<(&str, Program)> = vec![
        ("mux-sem", absint::mux_sem_abs(Fairness::Strong)),
        ("token-ring", absint::token_ring_abs(true)),
        ("peterson", absint::peterson_abs()),
    ];
    let specs = ["G !(c1 & c2)", "G (t1 -> F c1)", "G F c1"];
    let domains = [DomainKind::ValueSets, DomainKind::Relational];

    let mut rows = Vec::new();
    println!(
        "\n{:>12} {:>16} {:>10} {:>6} {:>11} {:>9} {:>9} {:>11} {:>11}",
        "program",
        "spec",
        "domain",
        "holds",
        "discharged",
        "explicit",
        "invfirst",
        "explicit ms",
        "invfirst ms"
    );
    for (name, prog) in &paper {
        for spec in specs {
            for kind in domains {
                let row = run_row(name, prog, &sigma, spec, kind);
                println!(
                    "{:>12} {:>16} {:>10} {:>6} {:>11} {:>9} {:>9} {:>11.3} {:>11.3}",
                    row.name,
                    row.spec,
                    row.domain.name(),
                    row.holds,
                    row.stats.discharged,
                    row.explicit_states,
                    row.stats.product_states,
                    row.explicit_ms,
                    row.invfirst_ms
                );
                rows.push(row);
            }
        }
    }

    // The headline claims, checked over the paper rows.
    expect(
        "some paper safety property is discharged with strictly fewer product states",
        rows.iter()
            .any(|r| r.stats.discharged && r.stats.product_states < r.explicit_states),
    );
    expect(
        "every certificate on the paper programs validates",
        rows.iter().all(|r| r.stats.certificate_ok == Some(true)),
    );
    expect(
        "the abstract prune never removes a concrete product state",
        rows.iter().all(|r| r.stats.pruned_product_states == 0),
    );
    expect(
        "peterson mutex discharged relationally at zero product states",
        rows.iter().any(|r| {
            r.name == "peterson"
                && r.spec == "G !(c1 & c2)"
                && r.domain == DomainKind::Relational
                && r.stats.discharged
                && r.stats.product_states == 0
        }),
    );
    expect(
        "peterson mutex still falls back to the product under value sets",
        rows.iter().any(|r| {
            r.name == "peterson"
                && r.spec == "G !(c1 & c2)"
                && r.domain == DomainKind::ValueSets
                && !r.stats.discharged
                && r.stats.product_states > 0
        }),
    );

    // The states-vs-N series: explicit product states grow with N; the
    // invariant-first path stays flat at zero when the domain discharges.
    let max_n = 6usize;
    let mutex = "G !(c1 & c2)";
    let mut series = Vec::new();
    println!(
        "\n{:>14} {:>3} {:>10} {:>11} {:>9} {:>9} {:>9}",
        "family", "n", "domain", "discharged", "explicit", "invfirst", "abslocs"
    );
    for family in ["mux-sem-n", "token-ring-n", "dining-phil-n"] {
        for n in 2..=max_n {
            let prog = family_program(family, n);
            for kind in domains {
                let row = run_row(&format!("{family}{n}"), &prog, &sigma, mutex, kind);
                let point = SeriesPoint {
                    family,
                    n,
                    domain: kind,
                    discharged: row.stats.discharged,
                    explicit_states: row.explicit_states,
                    invfirst_states: row.stats.product_states,
                    abstract_locations: analyze(&prog, kind).num_reachable_locations(),
                };
                println!(
                    "{:>14} {:>3} {:>10} {:>11} {:>9} {:>9} {:>9}",
                    point.family,
                    point.n,
                    point.domain.name(),
                    point.discharged,
                    point.explicit_states,
                    point.invfirst_states,
                    point.abstract_locations
                );
                expect(
                    &format!("{family}({n})/{} certificate validates", kind.name()),
                    row.stats.certificate_ok == Some(true),
                );
                series.push(point);
            }
        }
    }
    let ring_rel: Vec<&SeriesPoint> = series
        .iter()
        .filter(|p| p.family == "token-ring-n" && p.domain == DomainKind::Relational)
        .collect();
    expect(
        "token-ring-n explicit product states grow strictly with N",
        ring_rel
            .windows(2)
            .all(|w| w[0].explicit_states < w[1].explicit_states),
    );
    expect(
        &format!("token-ring-n invariant-first stays flat at 0 through N = {max_n} (relational)"),
        ring_rel
            .iter()
            .all(|p| p.discharged && p.invfirst_states == 0),
    );
    expect(
        "every family discharges relationally at every N",
        series
            .iter()
            .filter(|p| p.domain == DomainKind::Relational)
            .all(|p| p.discharged && p.invfirst_states == 0),
    );
    // At N = 2 the pc partition alone pins the other token bit, so the
    // honest cartesian gap opens at N >= 3.
    expect(
        "value sets lose the distributed token correlation for N >= 3 (the honest cartesian gap)",
        series
            .iter()
            .filter(|p| p.family == "token-ring-n" && p.domain == DomainKind::ValueSets && p.n >= 3)
            .all(|p| !p.discharged && p.invfirst_states > 0),
    );

    // Seeded random programs over [p0, p1]: verdict identity end to end,
    // under both the cartesian and the relational analysis.
    let psigma = Alphabet::of_propositions(["p0", "p1"]).expect("alphabet");
    let seeds = if smoke { 5u64 } else { 25 };
    let mut random_rows = Vec::new();
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let prog = absint::random_program(&mut rng);
        for spec in ["G p0", "G (p0 -> F p1)"] {
            for kind in domains {
                let row = run_row(&format!("random-{seed}"), &prog, &psigma, spec, kind);
                random_rows.push(row);
            }
        }
    }
    expect(
        "all random-program certificates validate",
        random_rows
            .iter()
            .all(|r| r.stats.certificate_ok == Some(true)),
    );
    println!(
        "\n{} random rows ({} seeds x 2 domains), verdict identity on all of them",
        random_rows.len(),
        seeds
    );
    rows.extend(random_rows);

    let mut json = String::from("{\n  \"experiment\": \"TAB-ABSINT\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"program\": \"{}\", \"spec\": \"{}\", \"domain\": \"{}\", \"holds\": {}, \
             \"discharged\": {}, \"certificate_ok\": {}, \"abstract_pairs\": {}, \
             \"explicit_states\": {}, \"invfirst_states\": {}, \
             \"pruned_product_states\": {}, \
             \"explicit_ms\": {:.3}, \"invfirst_ms\": {:.3}}}{sep}",
            r.name,
            r.spec,
            r.domain.name(),
            r.holds,
            r.stats.discharged,
            r.stats.certificate_ok == Some(true),
            r.stats.abstract_pairs,
            r.explicit_states,
            r.stats.product_states,
            r.stats.pruned_product_states,
            r.explicit_ms,
            r.invfirst_ms
        );
    }
    json.push_str("  ],\n  \"series\": [\n");
    for (i, p) in series.iter().enumerate() {
        let sep = if i + 1 == series.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"family\": \"{}\", \"n\": {}, \"domain\": \"{}\", \"discharged\": {}, \
             \"explicit_states\": {}, \"invfirst_states\": {}, \"abstract_locations\": {}}}{sep}",
            p.family,
            p.n,
            p.domain.name(),
            p.discharged,
            p.explicit_states,
            p.invfirst_states,
            p.abstract_locations
        );
    }
    json.push_str("  ]\n}\n");
    let out = "BENCH_absint.json";
    std::fs::write(out, &json).expect("write BENCH_absint.json");
    println!("\nwrote {out}");
    println!(
        "\nTAB-ABSINT complete (safety discharged from the certificate, zero product states)."
    );
}
