//! TAB-ABSINT — invariant-first checking versus explicit product search:
//! for each (program, specification) pair, the explicit product size and
//! wall time against the abstract-interpretation path of
//! `check_with_invariants` (certified invariant, abstract safety
//! discharge, explicit fallback otherwise). The paper's safety rows are
//! where the static proof rule pays off: the property is discharged from
//! the certificate with zero product states.
//!
//! `--smoke` shrinks the random sweep for the tier-1 gate.

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::automata::random::rng::{SeedableRng, StdRng};
use hierarchy_core::fts::absint::{self, DomainKind, Program};
use hierarchy_core::fts::checker::{check_with_invariants, verify_with_stats, CheckStats, Verdict};
use hierarchy_core::fts::programs;
use hierarchy_core::fts::system::Fairness;
use hierarchy_core::logic::to_automaton::compile_over;
use hierarchy_core::logic::Formula;
use std::fmt::Write as _;

struct Row {
    name: String,
    spec: String,
    holds: bool,
    stats: CheckStats,
    explicit_states: usize,
    explicit_ms: f64,
    invfirst_ms: f64,
}

fn run_row(name: &str, prog: &Program, sigma: &Alphabet, spec: &str) -> Row {
    let prop = compile_over(sigma, &Formula::parse(sigma, spec).expect(spec)).expect(spec);
    let ts = prog.to_builder(sigma).build().expect(name);
    let (explicit, t_explicit) = timed(|| verify_with_stats(&ts, &prop).expect(name));
    let (invfirst, t_invfirst) =
        timed(|| check_with_invariants(prog, sigma, &prop, DomainKind::ValueSets).expect(name));
    let (ev, estats) = explicit;
    let (iv, istats) = invfirst;
    expect(
        &format!("{name} / {spec}: verdicts agree"),
        ev.holds() == iv.holds(),
    );
    if let (Verdict::Violated(ecex), Verdict::Violated(icex)) = (&ev, &iv) {
        // Both counterexamples must replay; they need not be identical.
        expect(
            &format!("{name} / {spec}: both counterexamples replay"),
            !ecex.cycle.is_empty() && !icex.cycle.is_empty(),
        );
    }
    Row {
        name: name.to_string(),
        spec: spec.to_string(),
        holds: iv.holds(),
        stats: istats,
        explicit_states: estats.product_states,
        explicit_ms: t_explicit,
        invfirst_ms: t_invfirst,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header(
        "TAB-ABSINT",
        "invariant-first checking vs explicit product search",
    );
    let sigma = programs::observation_alphabet();

    let paper: Vec<(&str, Program)> = vec![
        ("mux-sem", absint::mux_sem_abs(Fairness::Strong)),
        ("token-ring", absint::token_ring_abs(true)),
        ("peterson", absint::peterson_abs()),
    ];
    let specs = ["G !(c1 & c2)", "G (t1 -> F c1)", "G F c1"];

    let mut rows = Vec::new();
    println!(
        "\n{:>12} {:>16} {:>6} {:>11} {:>9} {:>9} {:>11} {:>11}",
        "program",
        "spec",
        "holds",
        "discharged",
        "explicit",
        "invfirst",
        "explicit ms",
        "invfirst ms"
    );
    for (name, prog) in &paper {
        for spec in specs {
            let row = run_row(name, prog, &sigma, spec);
            println!(
                "{:>12} {:>16} {:>6} {:>11} {:>9} {:>9} {:>11.3} {:>11.3}",
                row.name,
                row.spec,
                row.holds,
                row.stats.discharged,
                row.explicit_states,
                row.stats.product_states,
                row.explicit_ms,
                row.invfirst_ms
            );
            rows.push(row);
        }
    }

    // The headline claims, checked over the paper rows.
    expect(
        "some paper safety property is discharged with strictly fewer product states",
        rows.iter()
            .any(|r| r.stats.discharged && r.stats.product_states < r.explicit_states),
    );
    expect(
        "every certificate on the paper programs validates",
        rows.iter().all(|r| r.stats.certificate_ok == Some(true)),
    );
    expect(
        "the abstract prune never removes a concrete product state",
        rows.iter().all(|r| r.stats.pruned_states == 0),
    );

    // Seeded random programs over [p0, p1]: verdict identity end to end.
    let psigma = Alphabet::of_propositions(["p0", "p1"]).expect("alphabet");
    let seeds = if smoke { 5u64 } else { 25 };
    let mut random_rows = Vec::new();
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let prog = absint::random_program(&mut rng);
        for spec in ["G p0", "G (p0 -> F p1)"] {
            let row = run_row(&format!("random-{seed}"), &prog, &psigma, spec);
            random_rows.push(row);
        }
    }
    expect(
        "all random-program certificates validate",
        random_rows
            .iter()
            .all(|r| r.stats.certificate_ok == Some(true)),
    );
    println!(
        "\n{} random rows ({} seeds), verdict identity on all of them",
        random_rows.len(),
        seeds
    );
    rows.extend(random_rows);

    let mut json = String::from("{\n  \"experiment\": \"TAB-ABSINT\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"program\": \"{}\", \"spec\": \"{}\", \"holds\": {}, \
             \"discharged\": {}, \"certificate_ok\": {}, \"abstract_pairs\": {}, \
             \"explicit_states\": {}, \"invfirst_states\": {}, \
             \"explicit_ms\": {:.3}, \"invfirst_ms\": {:.3}}}{sep}",
            r.name,
            r.spec,
            r.holds,
            r.stats.discharged,
            r.stats.certificate_ok == Some(true),
            r.stats.abstract_pairs,
            r.explicit_states,
            r.stats.product_states,
            r.explicit_ms,
            r.invfirst_ms
        );
    }
    json.push_str("  ]\n}\n");
    let out = "BENCH_absint.json";
    std::fs::write(out, &json).expect("write BENCH_absint.json");
    println!("\nwrote {out}");
    println!(
        "\nTAB-ABSINT complete (safety discharged from the certificate, zero product states)."
    );
}
