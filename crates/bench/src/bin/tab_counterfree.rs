//! TAB-CF — the counter-freedom frontier: temporal logic expresses exactly
//! the counter-free automata (\[Zuc86], §5). Modulo-n counting automata are
//! detected at every n; the hierarchy witnesses are all counter-free.

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::counterfree::{self, CounterFreedom};
use hierarchy_core::automata::prelude::*;
use hierarchy_core::lang::witnesses;

/// "The number of a's is ≡ 0 (mod n) infinitely often."
fn mod_counter(sigma: &Alphabet, n: usize) -> OmegaAutomaton {
    let a = sigma.symbol("a").expect("a");
    OmegaAutomaton::build(
        sigma,
        n,
        0,
        move |q, s| {
            if s == a {
                ((q as usize + 1) % n) as u32
            } else {
                q
            }
        },
        Acceptance::inf([0]),
    )
}

fn main() {
    header(
        "TAB-CF",
        "counter-free vs counting automata (§5, Prop 5.3/5.4)",
    );
    let sigma = Alphabet::new(["a", "b"]).expect("alphabet");

    println!(
        "\n{:>4} {:>14} {:>10} {:>10}",
        "n", "verdict", "period", "time ms"
    );
    for n in 2..=9 {
        let m = mod_counter(&sigma, n);
        let (v, ms) = timed(|| counterfree::check_omega(&m, counterfree::DEFAULT_MONOID_CAP));
        match &v {
            CounterFreedom::Counter { period, .. } => {
                println!("{n:>4} {:>14} {period:>10} {ms:>10.3}", "counter");
                assert_eq!(*period, n, "mod-{n} counter must have period {n}");
            }
            CounterFreedom::CounterFree { .. } => {
                println!("{n:>4} {:>14} {:>10} {ms:>10.3}", "counter-free", "-");
                panic!("mod-{n} counter not detected");
            }
        }
    }
    expect(
        "every modulo-n counter is detected with the exact period",
        true,
    );

    // All hierarchy witnesses are counter-free (they came from formulas /
    // star-free constructions).
    let all_cf = [
        witnesses::safety(),
        witnesses::guarantee(),
        witnesses::recurrence(),
        witnesses::persistence(),
        witnesses::obligation_simple(),
        witnesses::obligation_witness(4),
        witnesses::reactivity_witness(2),
    ]
    .iter()
    .all(|m| counterfree::check_omega(m, counterfree::DEFAULT_MONOID_CAP).is_counter_free());
    expect(
        "all hierarchy witnesses are counter-free (LTL-expressible)",
        all_cf,
    );

    // Monoid sizes for the witnesses (the cost driver of the check).
    println!("\nmonoid sizes:");
    for (name, m) in [
        ("safety witness", witnesses::safety()),
        ("recurrence witness", witnesses::recurrence()),
        ("Obl₄ witness", witnesses::obligation_witness(4)),
    ] {
        if let CounterFreedom::CounterFree { monoid_size } =
            counterfree::check_omega(&m, counterfree::DEFAULT_MONOID_CAP)
        {
            println!("  {name:<22} {monoid_size}");
        }
    }
    println!("\nTAB-CF reproduced.");
}
