//! FIG1 — regenerates Figure 1: the inclusion diagram of the six classes,
//! with every inclusion verified strict by a canonical witness.

use hierarchy_bench::{expect, header};
use hierarchy_core::automata::classify;
use hierarchy_core::lang::witnesses;

fn main() {
    header("FIG1", "inclusion relations between the classes (Figure 1)");

    let entries = [
        ("safety A(a⁺b*)", witnesses::safety()),
        ("guarantee E(Σ*b)", witnesses::guarantee()),
        ("obligation a*b^ω+Σ*cΣ^ω", witnesses::obligation_simple()),
        ("recurrence (a*b)^ω", witnesses::recurrence()),
        ("persistence Σ*b^ω", witnesses::persistence()),
        ("simple reactivity wit.", witnesses::reactivity_witness(1)),
        ("reactivity level 2 wit.", witnesses::reactivity_witness(2)),
    ];

    println!(
        "\n{:<26} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>6}",
        "witness", "saf", "gua", "obl", "rec", "per", "s-react", "react"
    );
    let mut rows = Vec::new();
    for (name, aut) in &entries {
        let c = classify::classify(aut);
        let t = |b: bool| if b { "✓" } else { "·" };
        println!(
            "{:<26} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>6}",
            name,
            t(c.is_safety),
            t(c.is_guarantee),
            t(c.is_obligation),
            t(c.is_recurrence),
            t(c.is_persistence),
            t(c.is_simple_reactivity),
            "✓",
        );
        rows.push(c);
    }
    println!();

    // Every arrow of Figure 1, with strictness:
    expect(
        "safety ⊆ obligation, strictly",
        rows[0].is_obligation && !rows[2].is_safety,
    );
    expect(
        "guarantee ⊆ obligation, strictly",
        rows[1].is_obligation && !rows[2].is_guarantee,
    );
    expect(
        "obligation ⊆ recurrence, strictly",
        rows[2].is_recurrence && !rows[3].is_obligation,
    );
    expect(
        "obligation ⊆ persistence, strictly",
        rows[2].is_persistence && !rows[4].is_obligation,
    );
    expect(
        "recurrence ⊆ simple reactivity, strictly",
        rows[3].is_simple_reactivity && !rows[5].is_recurrence,
    );
    expect(
        "persistence ⊆ simple reactivity, strictly",
        rows[4].is_simple_reactivity && !rows[5].is_persistence,
    );
    expect(
        "simple reactivity ⊊ reactivity",
        !rows[6].is_simple_reactivity && rows[6].reactivity_index == 2,
    );
    expect(
        "safety and guarantee incomparable",
        !rows[0].is_guarantee && !rows[1].is_safety,
    );
    expect(
        "recurrence and persistence incomparable",
        !rows[3].is_persistence && !rows[4].is_recurrence,
    );
    // Obligation = recurrence ∩ persistence (Δ₂ = Π₂ ∩ Σ₂) on all rows:
    expect(
        "obligation = recurrence ∩ persistence on all witnesses",
        rows.iter()
            .all(|c| c.is_obligation == (c.is_recurrence && c.is_persistence)),
    );
    println!("\nFIG1 reproduced: all inclusions hold and are strict.");
}
