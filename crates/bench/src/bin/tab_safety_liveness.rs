//! TAB-SL — the safety–liveness classification: the decomposition theorem
//! `Π = Π_S ∩ Π_L`, density = liveness, the orthogonality of the two
//! classifications, and the uniform-liveness example (including the
//! erratum found in the paper's example).

use hierarchy_bench::{expect, header};
use hierarchy_core::automata::random::rng::SeedableRng;
use hierarchy_core::automata::random::rng::StdRng;
use hierarchy_core::automata::{classify, random};
use hierarchy_core::prelude::*;
use hierarchy_core::topology::{decomposition, density};

fn main() {
    header("TAB-SL", "the safety–liveness classification (§2–§3)");
    let sigma = Alphabet::new(["a", "b"]).expect("alphabet");

    // --- The worked example: aUb = (aWb) ∩ ◇b.
    let until = Property::parse(&sigma, "a U b").expect("compiles");
    let weak = Property::parse(&sigma, "a W b").expect("compiles");
    let (s, l) = until.safety_liveness_decomposition();
    expect("safety closure of aUb is aWb", s.equivalent(&weak));
    expect("liveness part is dense", density::is_dense(l.automaton()));
    expect(
        "recomposition is exact: aUb = (aWb) ∩ L",
        s.intersection(&l).equivalent(&until),
    );

    // --- Decomposition theorem on a random sweep.
    let mut rng = StdRng::seed_from_u64(99);
    let mut all_valid = true;
    for _ in 0..60 {
        let (aut, _) = random::random_streett(&mut rng, &sigma, 6, 2, 0.3);
        all_valid &= decomposition::decomposition_is_valid(&aut);
    }
    expect("Π = A(Pref Π) ∩ L(Π) on 60 random properties", all_valid);

    // --- Orthogonality: the liveness part retains the κ class.
    type ClassCheck = fn(&hierarchy_core::automata::omega::OmegaAutomaton) -> bool;
    let live_kappa: [(&str, ClassCheck); 4] = [
        ("F b", classify::is_guarantee),
        ("G (a -> F b)", classify::is_recurrence),
        ("F G a", classify::is_persistence),
        ("G a | F b", classify::is_obligation),
    ];
    for (src, check) in live_kappa {
        let p = Property::parse(&sigma, src).expect("compiles");
        let l = decomposition::liveness_extension(p.automaton());
        expect(
            &format!("L({src}) stays in the class of {src} and is live"),
            check(&l) && density::is_dense(&l),
        );
    }

    // --- Liveness = density; safety ∩ liveness = {Σ^ω}.
    expect(
        "the liveness class is the dense sets (◇b dense, □a not)",
        density::is_dense(Property::parse(&sigma, "F b").expect("ok").automaton())
            && !density::is_dense(Property::parse(&sigma, "G a").expect("ok").automaton()),
    );

    // --- Uniform liveness.
    let per = Property::parse(&sigma, "F G b").expect("compiles");
    expect(
        "Σ*b^ω is uniformly live (extension b^ω)",
        density::is_uniform_liveness(per.automaton()),
    );
    // The paper's claimed non-uniform example a·Σ*·aa·Σ^ω + b·Σ*·bb·Σ^ω is
    // actually uniform (σ′ = aabb^ω) — erratum; see the
    // `hierarchy-topology` density tests for the full construction, and
    // the corrected non-uniform example "eventually only the first
    // symbol":
    let a = sigma.symbol("a").expect("a");
    let corrected = OmegaAutomaton::build(
        &sigma,
        5,
        0,
        move |q, s| match (q, s == a) {
            (0, true) => 1,
            (0, false) => 3,
            (1 | 2, true) => 1,
            (1 | 2, false) => 2,
            (3 | 4, false) => 3,
            (3 | 4, true) => 4,
            _ => unreachable!(),
        },
        Acceptance::fin([2, 4]),
    );
    expect(
        "a·Σ*·a^ω + b·Σ*·b^ω is live but NOT uniformly live",
        density::is_dense(&corrected) && !density::is_uniform_liveness(&corrected),
    );
    println!("\nTAB-SL reproduced.");
}
