//! TAB-INCL — the direct inclusion/equivalence oracle
//! (`hierarchy_automata::inclusion`, Angluin & Fisman) against the
//! classical complement+product+emptiness construction, on seeded
//! random Streett suites.
//!
//! The old oracle decides `L(A) ⊆ L(B)` by materializing `A × ¬B` and
//! converting its combined acceptance to DNF — exponential in the
//! number of Streett pairs (`k` conjoined pairs distribute into `2^k`
//! generalized Rabin disjuncts). The direct oracle works on the same
//! product graph but keeps each Streett pair whole and answers with
//! iterated-SCC refinement (plus the parity fast path when both sides
//! admit a [`ParityView`](hierarchy_core::automata::inclusion::ParityView)),
//! so its cost is polynomial in `k`. This table measures both oracles
//! on identical equivalence queries, asserts the verdicts are identical
//! on **every** seeded case (the release-mode counterpart of the
//! debug-mode differential tripwire), and asserts the headline claim:
//! at 256 states the direct oracle's median latency is at least 2×
//! better.
//!
//! `--smoke` runs a shrunken suite and skips the JSON artifact so the
//! committed `BENCH_inclusion.json` always describes the full run.

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::inclusion;
use hierarchy_core::automata::prelude::*;
use hierarchy_core::automata::random::random_streett;
use hierarchy_core::automata::random::rng::{SeedableRng, StdRng};
use std::fmt::Write as _;

/// Median of a latency sample (sample sizes here are small and even or
/// odd; the midpoint average keeps it honest either way).
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let n = v.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

struct Suite {
    states: usize,
    pairs: usize,
    density: f64,
    batch: usize,
    old_ms: Vec<f64>,
    new_ms: Vec<f64>,
    verdicts_equal: bool,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header(
        "TAB-INCL",
        "direct inclusion/equivalence oracle vs complement+product",
    );
    let ab = Alphabet::new(["a", "b"]).expect("alphabet");

    // (states, pairs, set density, batch of equivalence queries)
    let combos: &[(usize, usize, f64, usize)] = if smoke {
        &[(64, 2, 0.1, 4)]
    } else {
        &[(64, 2, 0.1, 12), (128, 4, 0.08, 10), (256, 6, 0.05, 10)]
    };
    let mut rng = StdRng::seed_from_u64(20_020_319); // arXiv:2002.03191
    println!(
        "\n{:>7} {:>6} {:>8} {:>6} {:>12} {:>12} {:>9}",
        "states", "pairs", "density", "batch", "old med ms", "new med ms", "speedup"
    );
    let mut suites: Vec<Suite> = Vec::new();
    for &(n, k, p, batch) in combos {
        let mut suite = Suite {
            states: n,
            pairs: k,
            density: p,
            batch,
            old_ms: Vec::with_capacity(batch),
            new_ms: Vec::with_capacity(batch),
            verdicts_equal: true,
        };
        for _ in 0..batch {
            // Timed workload: equivalence against the language-preserving
            // quotient. The verdict is *true*, so neither oracle can bail
            // out on the first counterexample — the old one must prove
            // all `2^k · k` DNF disjuncts empty, the worst case the
            // direct oracle is built to avoid.
            let (a, _) = random_streett(&mut rng, &ab, n, k, p);
            let b = minimize(&a).quotient;
            let (old_eq, old_ms) = timed(|| a.equivalent_via_complement(&b));
            let (new_eq, new_ms) = timed(|| inclusion::equivalent(&a, &b));
            suite.verdicts_equal &= old_eq == new_eq;
            // Untimed tripwire on an independent (generally inequivalent)
            // pair: verdict identity on the counterexample-bearing shape
            // too, equivalence and both inclusion directions.
            let (c, _) = random_streett(&mut rng, &ab, n, k, p);
            suite.verdicts_equal &=
                inclusion::equivalent(&a, &c) == a.equivalent_via_complement(&c);
            suite.verdicts_equal &=
                inclusion::included(&a, &c) == a.is_subset_of_via_complement(&c);
            suite.verdicts_equal &=
                inclusion::included(&c, &a) == c.is_subset_of_via_complement(&a);
            suite.old_ms.push(old_ms);
            suite.new_ms.push(new_ms);
        }
        let (om, nm) = (median(&suite.old_ms), median(&suite.new_ms));
        println!(
            "{n:>7} {k:>6} {p:>8} {batch:>6} {om:>12.4} {nm:>12.4} {:>8.1}x",
            om / nm.max(1e-9)
        );
        expect(
            "old and new oracles agree on every seeded case",
            suite.verdicts_equal,
        );
        suites.push(suite);
    }

    if let Some(big) = suites.iter().find(|s| s.states == 256) {
        let (om, nm) = (median(&big.old_ms), median(&big.new_ms));
        expect(
            "direct oracle is at least 2x faster (median) at 256 states",
            om >= 2.0 * nm,
        );
    }

    if smoke {
        println!("\nTAB-INCL smoke complete (JSON artifact skipped).");
        return;
    }

    // --- Machine-readable artifact.
    let mut json = String::from("{\n  \"experiment\": \"TAB-INCL\",\n");
    let _ = writeln!(json, "  \"verdicts_identical\": true,");
    let _ = writeln!(
        json,
        "  \"note\": \"equivalence queries on seeded random Streett pairs; old = \
         complement+product+DNF emptiness, new = direct product-graph Streett \
         refinement (inclusion module). Medians over the per-suite batch.\","
    );
    json.push_str("  \"seeded_streett\": [\n");
    for (i, s) in suites.iter().enumerate() {
        let sep = if i + 1 == suites.len() { "" } else { "," };
        let (om, nm) = (median(&s.old_ms), median(&s.new_ms));
        let _ = writeln!(
            json,
            "    {{\"states\": {}, \"pairs\": {}, \"density\": {}, \"batch\": {}, \
             \"old_median_ms\": {om:.4}, \"new_median_ms\": {nm:.4}, \
             \"old_total_ms\": {:.3}, \"new_total_ms\": {:.3}, \
             \"median_speedup\": {:.2}}}{sep}",
            s.states,
            s.pairs,
            s.density,
            s.batch,
            s.old_ms.iter().sum::<f64>(),
            s.new_ms.iter().sum::<f64>(),
            om / nm.max(1e-9)
        );
    }
    json.push_str("  ]\n}\n");
    let out = "BENCH_inclusion.json";
    std::fs::write(out, &json).expect("write BENCH_inclusion.json");
    println!("\nwrote {out}");
    println!("\nTAB-INCL complete (direct oracle verdict-identical everywhere).");
}
