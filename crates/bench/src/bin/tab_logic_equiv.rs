//! TAB-TL — the temporal-logic view: the `Sat(·) = O(esat(·))` bridges
//! between the logic and linguistic views, and the paper's named formula
//! equivalences, all verified by exact automaton equivalence.

use hierarchy_bench::{expect, header};
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::lang::operators;
use hierarchy_core::logic::tester::esat;
use hierarchy_core::logic::to_automaton::compile_over;
use hierarchy_core::logic::{rewrites, Formula};

fn compiled(sigma: &Alphabet, src: &str) -> hierarchy_core::automata::omega::OmegaAutomaton {
    compile_over(sigma, &Formula::parse(sigma, src).expect("parses")).expect("compiles")
}

fn main() {
    header(
        "TAB-TL",
        "Sat(modality p) = operator(esat(p)), and the §4 equivalences",
    );
    let sigma = Alphabet::new(["a", "b"]).expect("alphabet");

    // --- The four bridges, on several past formulas.
    let past_formulas = ["b & Z H a", "a S b", "O (b & Y a)", "a B b", "H (a | Y b)"];
    for src in past_formulas {
        let p = Formula::parse(&sigma, src).expect("parses");
        let phi = esat(&sigma, &p).expect("past");
        let ok = compile_over(&sigma, &p.clone().always())
            .expect("□p")
            .equivalent(&operators::a(&phi))
            && compile_over(&sigma, &p.clone().eventually())
                .expect("◇p")
                .equivalent(&operators::e(&phi))
            && compile_over(&sigma, &p.clone().eventually().always())
                .expect("□◇p")
                .equivalent(&operators::r(&phi))
            && compile_over(&sigma, &p.clone().always().eventually())
                .expect("◇□p")
                .equivalent(&operators::p(&phi));
        expect(&format!("Sat bridges hold for p = {src}"), ok);
    }

    // --- The paper's named equivalences, as exact language equalities.
    let pairs = [
        ("response", "G (a -> F b)", "G F (!a B b)"),
        (
            "conditional guarantee",
            "a -> F b",
            "F (O (first & a) -> b)",
        ),
        ("conditional safety", "a -> G b", "G (O (a & first) -> b)"),
        (
            "conditional persistence",
            "G (a -> F G b)",
            "F G (O a -> b)",
        ),
        ("safety conj.", "G a & G (a | b)", "G (a & (a | b))"),
        ("guarantee conj.", "F a & F b", "F (O a & O b)"),
        ("recurrence disj.", "G F a | G F b", "G F (a | b)"),
        (
            "persistence conj.",
            "F G a & F G (a | b)",
            "F G (a & (a | b))",
        ),
        // □p ∨ □q ≡ □(⊡p ∨ ⊡q).
        ("safety disj.", "G a | G b", "G (H a | H b)"),
        // The recurrence conjunction law via the minex past formula.
        (
            "recurrence conj. (minex)",
            "G F a & G F b",
            "G F (b & Y (!b S a))",
        ),
    ];
    for (name, lhs, rhs) in pairs {
        let l = compiled(&sigma, lhs);
        let r = compiled(&sigma, rhs);
        expect(&format!("{name}: {lhs} ≡ {rhs}"), l.equivalent(&r));
    }

    // --- The canonicalizer proves the same equivalences syntactically.
    let canonical = rewrites::canonicalize(&Formula::parse(&sigma, "G (a -> F b)").expect("ok"));
    expect(
        "canonicalize(□(a→◇b)) lands in the hierarchy grammar",
        rewrites::is_hierarchy_form(&canonical),
    );

    // --- The minex-formula identity: esat(q ∧ ⊖((¬q) S p)) =
    //     minex(esat(p), esat(q)).
    let p = Formula::parse(&sigma, "a").expect("a");
    let q = Formula::parse(&sigma, "b").expect("b");
    let minex_formula = q
        .clone()
        .and(Formula::parse(&sigma, "Y (!b S a)").expect("past"));
    let via_formula = esat(&sigma, &minex_formula).expect("past");
    let via_operator = esat(&sigma, &p)
        .expect("past")
        .minex(&esat(&sigma, &q).expect("past"));
    expect(
        "esat(q ∧ ⊖((¬q) S p)) = minex(esat(p), esat(q))",
        via_formula.equivalent(&via_operator),
    );

    println!("\nTAB-TL reproduced.");
}
