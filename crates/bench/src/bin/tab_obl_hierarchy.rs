//! TAB-OBLK — the strict `Obl_k` hierarchy: the witness family
//! `[(Π + (a+b)*)d]^{k-1}·Π` has exact obligation index `k` for every `k`,
//! while the family *as printed in the paper* (`a*` blocks) collapses to
//! `Obl₁`.

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::classify;
use hierarchy_core::lang::witnesses;

fn main() {
    header(
        "TAB-OBLK",
        "the strict Obl_k hierarchy (§2, compound classes)",
    );
    println!(
        "\n{:>3} {:>8} {:>18} {:>22} {:>10}",
        "k", "states", "index (corrected)", "index (as printed)", "time ms"
    );
    for k in 1..=8 {
        let m = witnesses::obligation_witness(k);
        let (c, ms) = timed(|| classify::classify(&m));
        let printed = classify::classify(&witnesses::obligation_witness_as_printed(k));
        println!(
            "{:>3} {:>8} {:>18} {:>22} {:>10.2}",
            k,
            m.num_states(),
            c.obligation_index
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".into()),
            printed
                .obligation_index
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".into()),
            ms,
        );
        assert!(c.is_obligation, "witness {k} must be an obligation");
        assert_eq!(
            c.obligation_index,
            Some(k),
            "witness {k} must have index {k}"
        );
        assert_eq!(
            printed.obligation_index,
            Some(1),
            "printed family collapses to Obl₁"
        );
    }
    println!();
    expect(
        "Obl_k index grows strictly with k on the corrected family",
        true,
    );
    expect(
        "the family exactly as printed in the paper is Obl₁ for every k (erratum)",
        true,
    );
    println!("\nTAB-OBLK reproduced.");
}
