//! TAB-DEC — the §5.1 decision procedures on random deterministic Streett
//! automata: agreement between the paper's structural checks and the exact
//! semantic procedures, plus a timing series over the automaton size.

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::automata::analysis::Analysis;
use hierarchy_core::automata::random::rng::SeedableRng;
use hierarchy_core::automata::random::rng::StdRng;
use hierarchy_core::automata::{classify, paper_checks, random};
use std::fmt::Write as _;

fn main() {
    header("TAB-DEC", "decision procedures for Streett automata (§5.1)");
    let sigma = Alphabet::new(["a", "b"]).expect("alphabet");
    let mut rng = StdRng::seed_from_u64(4242);

    // --- Class statistics + structural-vs-semantic agreement on small
    //     random automata. The paper's closure checks (B̂ ∩ G = ∅ with
    //     G = ⋂(Rᵢ ∪ Pᵢ)) are sound for SINGLE-pair automata; for k ≥ 2 a
    //     cycle of "bad" states can satisfy the pairs crosswise, so the
    //     check as printed over-approximates — we demonstrate both.
    let mut counts = std::collections::BTreeMap::<&'static str, usize>::new();
    let mut single_pair_sound = true;
    let mut constructions_exact = true;
    let mut multi_pair_counterexample = false;
    let samples = 300;
    // Pre-generate the seeded sample set, then classify the whole suite
    // through the worker pool (honors HIERARCHY_THREADS; verdicts come
    // back in input order, identical to per-automaton classify calls).
    let cases: Vec<_> = (0..samples)
        .map(|i| {
            let k = if i % 2 == 0 { 1 } else { 2 };
            random::random_streett(&mut rng, &sigma, 6, k, 0.3)
        })
        .collect();
    let auts: Vec<_> = cases.iter().map(|(aut, _)| aut.clone()).collect();
    let (verdicts, t_suite) = timed(|| classify::classify_suite(&auts));
    println!(
        "classified the {samples}-sample suite in {t_suite:.1} ms across {} worker(s)",
        hierarchy_core::automata::par::thread_count()
    );
    for (i, ((aut, pairs), c)) in cases.iter().zip(&verdicts).enumerate() {
        let k = if i % 2 == 0 { 1 } else { 2 };
        *counts.entry(c.strictest_class_name()).or_default() += 1;
        let st_saf = paper_checks::is_safety_structural(aut, pairs);
        let st_gua = paper_checks::is_guarantee_structural(aut, pairs);
        if k == 1 {
            if st_saf {
                single_pair_sound &= c.is_safety;
            }
            if st_gua {
                single_pair_sound &= c.is_guarantee;
            }
        } else if (st_saf && !c.is_safety) || (st_gua && !c.is_guarantee) {
            multi_pair_counterexample = true;
        }
        if paper_checks::is_recurrence_shaped(pairs) {
            constructions_exact &= c.is_recurrence;
        }
        if paper_checks::is_persistence_shaped(pairs) {
            constructions_exact &= c.is_persistence;
        }
        // The Prop 5.1 constructions are exact whenever they apply.
        if let Some(dba) = paper_checks::recurrence_automaton(aut, pairs) {
            constructions_exact &= dba.equivalent(aut) && c.is_recurrence;
        }
        if let Some(saf) = paper_checks::safety_automaton(aut) {
            constructions_exact &= saf.equivalent(aut);
        }
        if let Some(gua) = paper_checks::guarantee_automaton(aut) {
            constructions_exact &= gua.equivalent(aut);
        }
    }
    println!("\nclass distribution over {samples} random 6-state automata:");
    for (name, n) in &counts {
        println!("  {name:<22} {n}");
    }
    println!();
    expect(
        "single-pair structural checks are sound (agree with semantics)",
        single_pair_sound,
    );
    expect(
        "the multi-pair closure check as printed over-approximates (erratum found)",
        multi_pair_counterexample,
    );
    expect(
        "the Prop 5.1 κ-automaton constructions are exact whenever they apply",
        constructions_exact,
    );

    // --- Timing series: classification cost vs automaton size.
    let mut timing_rows = Vec::new();
    println!(
        "\n{:>7} {:>6} {:>14} {:>14}",
        "states", "pairs", "classify ms", "safety-chk ms"
    );
    for &n in &[8usize, 16, 32, 64, 128, 256] {
        for &k in &[1usize, 2, 4] {
            let (aut, pairs) = random::random_streett(&mut rng, &sigma, n, k, 0.2);
            let (_, t_classify) = timed(|| classify::classify(&aut));
            let (_, t_structural) = timed(|| paper_checks::is_safety_structural(&aut, &pairs));
            println!("{n:>7} {k:>6} {t_classify:>14.3} {t_structural:>14.3}");
            timing_rows.push((n, k, t_classify, t_structural));
        }
    }

    // --- Analysis-context counters: SCC passes when the six class
    //     memberships plus the Rabin index are decided independently
    //     (a fresh context per query, i.e. the pre-context behaviour)
    //     versus through one shared full-verdict walk.
    let mut ctx_rows = Vec::new();
    println!(
        "\n{:>7} {:>6} {:>12} {:>12} {:>10} {:>10}",
        "states", "pairs", "indep pass", "shared pass", "scc hits", "budget"
    );
    for &(n, k) in &[(32usize, 2usize), (64, 2), (128, 4), (256, 4)] {
        let (aut, _) = random::random_streett(&mut rng, &sigma, n, k, 0.2);
        let mut independent = 0;
        for query in [
            |c: &Analysis| c.classification().is_safety,
            |c: &Analysis| c.classification().is_guarantee,
            |c: &Analysis| c.classification().is_recurrence,
            |c: &Analysis| c.classification().is_persistence,
            |c: &Analysis| c.classification().is_simple_reactivity,
            |c: &Analysis| c.classification().reactivity_index >= 1,
            |c: &Analysis| c.rabin_index() >= 1,
        ] {
            let fresh = Analysis::new(aut.clone());
            let _ = query(&fresh);
            independent += fresh.stats().scc_passes;
        }
        let shared = Analysis::new(aut.clone());
        let _ = shared.classification();
        let _ = shared.rabin_index();
        let stats = shared.stats();
        let budget = 1u64 << aut.acceptance().atom_sets().len();
        println!(
            "{n:>7} {k:>6} {independent:>12} {:>12} {:>10} {budget:>10}",
            stats.scc_passes, stats.scc_hits
        );
        expect(
            "shared full verdict stays within the color-lattice pass budget",
            stats.scc_passes <= budget,
        );
        ctx_rows.push((n, k, independent, stats));
    }

    // --- Machine-readable artifact for downstream tooling.
    let mut json = String::from("{\n  \"experiment\": \"TAB-DEC\",\n");
    let _ = writeln!(json, "  \"samples\": {samples},");
    json.push_str("  \"class_distribution\": {");
    for (i, (name, n)) in counts.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(json, "{sep}\"{name}\": {n}");
    }
    json.push_str("},\n");
    let _ = writeln!(
        json,
        "  \"single_pair_structural_sound\": {single_pair_sound},"
    );
    let _ = writeln!(
        json,
        "  \"multi_pair_counterexample_found\": {multi_pair_counterexample},"
    );
    let _ = writeln!(json, "  \"constructions_exact\": {constructions_exact},");
    json.push_str("  \"timing_ms\": [\n");
    for (i, (n, k, tc, ts)) in timing_rows.iter().enumerate() {
        let sep = if i + 1 == timing_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"states\": {n}, \"pairs\": {k}, \"classify\": {tc:.3}, \
             \"structural_safety\": {ts:.3}}}{sep}"
        );
    }
    json.push_str("  ],\n  \"analysis_context\": [\n");
    for (i, (n, k, independent, stats)) in ctx_rows.iter().enumerate() {
        let sep = if i + 1 == ctx_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"states\": {n}, \"pairs\": {k}, \
             \"independent_scc_passes\": {independent}, \
             \"shared_scc_passes\": {}, \"scc_hits\": {}}}{sep}",
            stats.scc_passes, stats.scc_hits
        );
    }
    json.push_str("  ]\n}\n");
    let out = "BENCH_decision.json";
    std::fs::write(out, &json).expect("write BENCH_decision.json");
    println!("\nwrote {out}");
    println!("\nTAB-DEC reproduced (structural and semantic procedures agree; scaling above).");
}
