//! TAB-DEC — the §5.1 decision procedures on random deterministic Streett
//! automata: agreement between the paper's structural checks and the exact
//! semantic procedures, plus a timing series over the automaton size.

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::automata::{classify, paper_checks, random};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    header("TAB-DEC", "decision procedures for Streett automata (§5.1)");
    let sigma = Alphabet::new(["a", "b"]).expect("alphabet");
    let mut rng = StdRng::seed_from_u64(4242);

    // --- Class statistics + structural-vs-semantic agreement on small
    //     random automata. The paper's closure checks (B̂ ∩ G = ∅ with
    //     G = ⋂(Rᵢ ∪ Pᵢ)) are sound for SINGLE-pair automata; for k ≥ 2 a
    //     cycle of "bad" states can satisfy the pairs crosswise, so the
    //     check as printed over-approximates — we demonstrate both.
    let mut counts = std::collections::BTreeMap::<&'static str, usize>::new();
    let mut single_pair_sound = true;
    let mut constructions_exact = true;
    let mut multi_pair_counterexample = false;
    let samples = 300;
    for i in 0..samples {
        let k = if i % 2 == 0 { 1 } else { 2 };
        let (aut, pairs) = random::random_streett(&mut rng, &sigma, 6, k, 0.3);
        let c = classify::classify(&aut);
        *counts.entry(c.strictest_class_name()).or_default() += 1;
        let st_saf = paper_checks::is_safety_structural(&aut, &pairs);
        let st_gua = paper_checks::is_guarantee_structural(&aut, &pairs);
        if k == 1 {
            if st_saf {
                single_pair_sound &= c.is_safety;
            }
            if st_gua {
                single_pair_sound &= c.is_guarantee;
            }
        } else if (st_saf && !c.is_safety) || (st_gua && !c.is_guarantee) {
            multi_pair_counterexample = true;
        }
        if paper_checks::is_recurrence_shaped(&pairs) {
            constructions_exact &= c.is_recurrence;
        }
        if paper_checks::is_persistence_shaped(&pairs) {
            constructions_exact &= c.is_persistence;
        }
        // The Prop 5.1 constructions are exact whenever they apply.
        if let Some(dba) = paper_checks::recurrence_automaton(&aut, &pairs) {
            constructions_exact &= dba.equivalent(&aut) && c.is_recurrence;
        }
        if let Some(saf) = paper_checks::safety_automaton(&aut) {
            constructions_exact &= saf.equivalent(&aut);
        }
        if let Some(gua) = paper_checks::guarantee_automaton(&aut) {
            constructions_exact &= gua.equivalent(&aut);
        }
    }
    println!("\nclass distribution over {samples} random 6-state automata:");
    for (name, n) in &counts {
        println!("  {name:<22} {n}");
    }
    println!();
    expect(
        "single-pair structural checks are sound (agree with semantics)",
        single_pair_sound,
    );
    expect(
        "the multi-pair closure check as printed over-approximates (erratum found)",
        multi_pair_counterexample,
    );
    expect(
        "the Prop 5.1 κ-automaton constructions are exact whenever they apply",
        constructions_exact,
    );

    // --- Timing series: classification cost vs automaton size.
    println!("\n{:>7} {:>6} {:>14} {:>14}", "states", "pairs", "classify ms", "safety-chk ms");
    for &n in &[8usize, 16, 32, 64, 128, 256] {
        for &k in &[1usize, 2, 4] {
            let (aut, pairs) = random::random_streett(&mut rng, &sigma, n, k, 0.2);
            let (_, t_classify) = timed(|| classify::classify(&aut));
            let (_, t_structural) =
                timed(|| paper_checks::is_safety_structural(&aut, &pairs));
            println!("{n:>7} {k:>6} {t_classify:>14.3} {t_structural:>14.3}");
        }
    }
    println!("\nTAB-DEC reproduced (structural and semantic procedures agree; scaling above).");
}
