//! TAB-FAIR — fairness and the mutual-exclusion check-list: weak fairness
//! is a recurrence requirement, strong fairness a simple-reactivity one,
//! and the classes matter operationally (Peterson vs MUX-SEM).

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::fts::checker::{verify, Verdict};
use hierarchy_core::fts::programs;
use hierarchy_core::fts::system::Fairness;
use hierarchy_core::prelude::*;

fn holds(ts: &hierarchy_core::fts::system::TransitionSystem, sigma: &Alphabet, src: &str) -> bool {
    let p = Property::parse(sigma, src).expect("spec compiles");
    verify(ts, p.automaton()).expect("check").holds()
}

fn main() {
    header(
        "TAB-FAIR",
        "fairness classes and the mutual-exclusion programs",
    );

    // --- The fairness requirement formulas and their classes.
    let tau = Alphabet::of_propositions(["en", "tk"]).expect("alphabet");
    let weak = Property::parse(&tau, "G F (!en | tk)").expect("compiles");
    let strong = Property::parse(&tau, "G F en -> G F tk").expect("compiles");
    expect(
        "weak fairness □◇(¬En ∨ taken) is a recurrence property",
        weak.class() == HierarchyClass::Recurrence,
    );
    expect(
        "strong fairness □◇En → □◇taken is strict simple reactivity",
        strong.class() == HierarchyClass::SimpleReactivity,
    );
    expect(
        "as languages: strong-fair runs ⊆ weak-fair runs, strictly",
        strong.is_subset_of(&weak) && !weak.is_subset_of(&strong),
    );

    // --- Peterson: the complete specification holds.
    let (peterson, sigma) = programs::peterson();
    println!("\nPeterson ({} states):", peterson.num_states());
    let (ok_mutex, t1) = timed(|| holds(&peterson, &sigma, "G !(c1 & c2)"));
    let (ok_acc1, t2) = timed(|| holds(&peterson, &sigma, "G (t1 -> F c1)"));
    let (ok_acc2, t3) = timed(|| holds(&peterson, &sigma, "G (t2 -> F c2)"));
    println!("  mutual exclusion  {:>8.2} ms", t1);
    println!("  accessibility P1  {:>8.2} ms", t2);
    println!("  accessibility P2  {:>8.2} ms", t3);
    expect("Peterson: mutual exclusion (safety)", ok_mutex);
    expect(
        "Peterson: accessibility (recurrence) for both processes",
        ok_acc1 && ok_acc2,
    );
    expect(
        "Peterson: the under-specified safety-only spec admits it trivially \
         — the guarantee ◇c1 alone is false (a process may never request)",
        !holds(&peterson, &sigma, "F c1"),
    );

    // --- MUX-SEM: strong vs weak grants.
    println!("\nMUX-SEM:");
    let (strong_sem, sigma) = programs::mux_sem(Fairness::Strong);
    expect(
        "MUX-SEM strong: accessibility holds for both",
        holds(&strong_sem, &sigma, "G (t1 -> F c1)")
            && holds(&strong_sem, &sigma, "G (t2 -> F c2)"),
    );
    let (weak_sem, sigma) = programs::mux_sem(Fairness::Weak);
    let verdict = {
        let p = Property::parse(&sigma, "G (t2 -> F c2)").expect("ok");
        verify(&weak_sem, p.automaton()).expect("check")
    };
    match &verdict {
        Verdict::Violated(cex) => {
            println!("  weak grants starve process 2: loop {:?}", cex.cycle);
        }
        Verdict::Holds => {}
    }
    expect(
        "MUX-SEM weak: accessibility fails (starvation is weakly fair)",
        !verdict.holds(),
    );
    expect(
        "MUX-SEM weak: mutual exclusion still holds",
        holds(&weak_sem, &sigma, "G !(c1 & c2)"),
    );
    println!("\nTAB-FAIR reproduced.");
}
