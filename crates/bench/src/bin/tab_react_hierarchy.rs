//! TAB-REACTK — the strict reactivity hierarchy: the conjunction of `n`
//! independent simple reactivity formulas has exact reactivity index `n`
//! (the paper's final theorem of Section 4).

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::classify;
use hierarchy_core::lang::witnesses;

fn main() {
    header(
        "TAB-REACTK",
        "the strict reactivity hierarchy ⋀ᵢ(□◇pᵢ ∨ ◇□qᵢ)",
    );
    println!(
        "\n{:>3} {:>8} {:>7} {:>10}",
        "n", "states", "index", "time ms"
    );
    for n in 1..=5 {
        let m = witnesses::reactivity_witness(n);
        let (c, ms) = timed(|| classify::classify(&m));
        println!(
            "{:>3} {:>8} {:>7} {:>10.2}",
            n,
            m.num_states(),
            c.reactivity_index,
            ms
        );
        assert_eq!(c.reactivity_index, n, "witness {n} must have index {n}");
        assert_eq!(c.is_simple_reactivity, n == 1);
        assert!(!c.is_recurrence && !c.is_persistence);
    }
    println!();
    expect(
        "reactivity index equals n for the n-pair witness, n = 1..=5",
        true,
    );
    println!("\nTAB-REACTK reproduced.");
}
