//! TAB-DUAL — duality and closure laws of the four basic classes,
//! including the `minex` operator: the paper's equalities checked on the
//! concrete examples from the text and on a randomized sweep.

use hierarchy_bench::{expect, header};
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::automata::random::rng::StdRng;
use hierarchy_core::automata::random::rng::{Rng, SeedableRng};
use hierarchy_core::lang::{operators, FinitaryProperty};

/// A random finitary property via a random DFA.
fn random_phi(rng: &mut StdRng, sigma: &Alphabet) -> FinitaryProperty {
    let n = rng.gen_range(2..6);
    let d = hierarchy_core::automata::random::random_dfa(rng, sigma, n, 0.4);
    FinitaryProperty::from_dfa(d)
}

fn main() {
    header("TAB-DUAL", "duality and closure laws (§2)");
    let sigma = Alphabet::new(["a", "b"]).expect("alphabet");

    // --- The paper's concrete minex examples.
    let p3 = FinitaryProperty::parse(&sigma, "(aaa)+").expect("regex");
    let p2 = FinitaryProperty::parse(&sigma, "(aa)+").expect("regex");
    let m32 = p3.minex(&p2);
    let m23 = p2.minex(&p3);
    println!(
        "\nminex((a³)⁺, (a²)⁺) shortest member: {:?} symbols",
        m32.shortest_member().map(|w| w.len())
    );
    expect(
        "minex((a³)⁺,(a²)⁺) = (a⁶)⁺a² + (a⁶)*a⁴ (paper prints (a⁶)*a²; a² has no Φ₁-prefix)",
        m32.equivalent(
            &FinitaryProperty::parse(&sigma, "(aaaaaa)(aaaaaa)*aa + (aaaaaa)*aaaa").expect("regex"),
        ),
    );
    expect(
        "minex((a²)⁺,(a³)⁺) = (a⁶)⁺ + (a⁶)*a³ = (a³)⁺",
        m23.equivalent(&p3),
    );

    // --- The law sweep: 40 random pairs of finitary properties.
    let mut rng = StdRng::seed_from_u64(2026);
    let mut checked = 0u32;
    for _ in 0..40 {
        let f1 = random_phi(&mut rng, &sigma);
        let f2 = random_phi(&mut rng, &sigma);
        // Dualities.
        assert!(operators::a(&f1)
            .complement()
            .equivalent(&operators::e(&f1.complement())));
        assert!(operators::r(&f1)
            .complement()
            .equivalent(&operators::p(&f1.complement())));
        // Guarantee closure.
        assert!(operators::e(&f1)
            .union(&operators::e(&f2))
            .equivalent(&operators::e(&f1.union(&f2))));
        assert!(operators::e(&f1)
            .intersection(&operators::e(&f2))
            .equivalent(&operators::e(&f1.e_f().intersection(&f2.e_f()))));
        // Safety closure.
        assert!(operators::a(&f1)
            .intersection(&operators::a(&f2))
            .equivalent(&operators::a(&f1.intersection(&f2))));
        assert!(operators::a(&f1)
            .union(&operators::a(&f2))
            .equivalent(&operators::a(&f1.a_f().union(&f2.a_f()))));
        // Recurrence closure (union + the minex law).
        assert!(operators::r(&f1)
            .union(&operators::r(&f2))
            .equivalent(&operators::r(&f1.union(&f2))));
        assert!(operators::r(&f1)
            .intersection(&operators::r(&f2))
            .equivalent(&operators::r(&f1.minex(&f2))));
        // Persistence closure.
        assert!(operators::p(&f1)
            .intersection(&operators::p(&f2))
            .equivalent(&operators::p(&f1.intersection(&f2))));
        assert!(operators::p(&f1)
            .union(&operators::p(&f2))
            .equivalent(&operators::p(
                &f1.complement().minex(&f2.complement()).complement()
            )));
        checked += 1;
    }
    expect(
        &format!("all ten closure/duality laws hold on {checked} random pairs"),
        checked == 40,
    );

    // --- Safety characterization via Pref on random automata.
    let mut agree = true;
    for _ in 0..25 {
        let (aut, _) =
            hierarchy_core::automata::random::random_streett(&mut rng, &sigma, 5, 2, 0.3);
        let linguistic = operators::safety_closure_linguistic(&aut);
        let direct = hierarchy_core::automata::classify::safety_closure(&aut);
        agree &= linguistic.equivalent(&direct);
    }
    expect(
        "A(Pref(Π)) agrees with the automata-view safety closure",
        agree,
    );
    println!("\nTAB-DUAL reproduced.");
}
