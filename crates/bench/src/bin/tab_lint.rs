//! TAB-LINT — lint-pass overhead on random deterministic Streett
//! automata: the cost of a cold `lint_automaton` call (which builds its
//! own analysis context) versus classification alone versus the marginal
//! cost of `lint_automaton_ctx` on a context that has already classified
//! the automaton — the intended usage inside the classification stack.

use hierarchy_bench::{expect, header, timed};
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::automata::analysis::Analysis;
use hierarchy_core::automata::random;
use hierarchy_core::automata::random::rng::{SeedableRng, StdRng};
use hierarchy_core::lint::{lint_automaton, lint_automaton_ctx, lint_suite, registry, Lintable};
use std::fmt::Write as _;

fn main() {
    header("TAB-LINT", "lint-pass overhead on random Streett automata");
    let sigma = Alphabet::new(["a", "b"]).expect("alphabet");
    let mut rng = StdRng::seed_from_u64(20260805);

    let mut rows = Vec::new();
    let mut catalogued = true;
    let mut ctx_cheaper_somewhere = false;
    println!(
        "\n{:>7} {:>6} {:>13} {:>13} {:>13} {:>9}",
        "states", "pairs", "cold lint ms", "classify ms", "ctx lint ms", "findings"
    );
    for &n in &[64usize, 128, 256] {
        for &k in &[1usize, 2] {
            let (aut, _) = random::random_streett(&mut rng, &sigma, n, k, 0.2);

            // (a) Cold: lint_automaton builds its own Analysis.
            let (cold_diags, t_cold) = timed(|| lint_automaton(&aut));

            // (b) Classification alone, on a fresh context.
            let ctx = Analysis::new(aut.clone());
            let (_, t_classify) = timed(|| ctx.classification());

            // (c) Marginal: lint the already-classified context.
            let (ctx_diags, t_ctx) = timed(|| lint_automaton_ctx(&ctx));

            assert_eq!(
                cold_diags, ctx_diags,
                "ctx variant must agree with cold lint"
            );
            catalogued &= cold_diags.iter().all(|d| registry::rule(d.code).is_some());
            ctx_cheaper_somewhere |= t_ctx < t_cold;
            println!(
                "{n:>7} {k:>6} {t_cold:>13.3} {t_classify:>13.3} {t_ctx:>13.3} {:>9}",
                cold_diags.len()
            );
            rows.push((n, k, t_cold, t_classify, t_ctx, cold_diags.len()));
        }
    }

    expect("every emitted code is in the rule catalogue", catalogued);
    expect(
        "linting an already-classified context beats a cold lint somewhere",
        ctx_cheaper_somewhere,
    );

    // --- Batch linting through the worker pool: a seeded suite of small
    //     automata linted at several job counts, asserted diagnostic-
    //     identical to the sequential per-item lints.
    let suite: Vec<_> = (0..24)
        .map(|i| {
            let k = 1 + i % 2;
            random::random_streett(&mut rng, &sigma, 16, k, 0.25).0
        })
        .collect();
    let sequential: Vec<_> = suite.iter().map(Lintable::lint).collect();
    let mut batch_rows = Vec::new();
    println!("\n{:>6} {:>13}", "jobs", "suite ms");
    for jobs in [1usize, 2, 4] {
        let (batched, t_batch) = timed(|| lint_suite(&suite, jobs));
        expect(
            "batched lint reports are identical to sequential lints",
            batched == sequential,
        );
        println!("{jobs:>6} {t_batch:>13.3}");
        batch_rows.push((jobs, t_batch));
    }

    let mut json = String::from("{\n  \"experiment\": \"TAB-LINT\",\n  \"rows\": [\n");
    for (i, (n, k, t_cold, t_classify, t_ctx, findings)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"states\": {n}, \"pairs\": {k}, \"cold_lint_ms\": {t_cold:.3}, \
             \"classify_ms\": {t_classify:.3}, \"ctx_lint_ms\": {t_ctx:.3}, \
             \"findings\": {findings}}}{sep}"
        );
    }
    json.push_str("  ],\n  \"batch_suite\": [\n");
    for (i, (jobs, t_batch)) in batch_rows.iter().enumerate() {
        let sep = if i + 1 == batch_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"jobs\": {jobs}, \"suite_ms\": {t_batch:.3}}}{sep}"
        );
    }
    json.push_str("  ]\n}\n");
    let out = "BENCH_lint.json";
    std::fs::write(out, &json).expect("write BENCH_lint.json");
    println!("\nwrote {out}");
    println!("\nTAB-LINT complete (lint overhead rides the shared analysis context).");
}
