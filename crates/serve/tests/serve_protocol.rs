//! Protocol golden tests: drive the real `spec-serve` binary over a
//! pipe and compare every response **byte for byte** against goldens
//! built from direct library calls on the same artifacts. Covers every
//! method, every error shape, the exit-code contract, and the LRU
//! eviction/re-ingest cycle on the paper's running examples.

use hierarchy_core::automata::analysis::Analysis;
use hierarchy_core::automata::canonical::{self, LanguageEq};
use hierarchy_core::automata::omega::OmegaAutomaton;
use hierarchy_core::automata::{hoa, inclusion};
use hierarchy_core::fts::absint::{self, DomainKind};
use hierarchy_core::fts::checker::check_with_invariants;
use hierarchy_core::lint::{
    audit_suite_ctx, lint_abstract_program, lint_automaton_ctx, report_to_json, AuditOptions,
};
use hierarchy_core::prelude::*;
use hierarchy_core::{HierarchyClass, Property};
use hierarchy_serve::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

/// A live daemon with scripted request/response access.
struct Daemon {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_spec-serve"))
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn spec-serve");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Daemon {
            child,
            stdin,
            stdout,
        }
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().unwrap();
        let mut response = String::new();
        self.stdout.read_line(&mut response).expect("read response");
        assert!(
            response.ends_with('\n'),
            "daemon died mid-response for {line:?}"
        );
        response.pop();
        response
    }

    /// Closes stdin (the shutdown signal) and asserts a clean exit.
    fn shutdown(mut self) {
        drop(self.stdin);
        let status = self.child.wait().expect("wait for daemon");
        assert_eq!(status.code(), Some(0), "EOF on stdin must exit 0");
    }
}

// ---- golden builders (direct library calls) -------------------------

/// The paper's running examples: mutual exclusion (safety), the
/// response property (recurrence), termination (guarantee),
/// stabilization (persistence), and a proper obligation.
const RUNNING_EXAMPLES: &[(&str, &[&str])] = &[
    ("G !(c1 & c2)", &["c1", "c2", "t1", "t2"]),
    ("G (p -> F q)", &["p", "q"]),
    ("F p", &["p", "q"]),
    ("F G p", &["p", "q"]),
    ("G p | F q", &["p", "q"]),
];

fn compile(source: &str, props: &[&str]) -> OmegaAutomaton {
    let sigma = Alphabet::of_propositions(props.iter().copied()).unwrap();
    Property::parse(&sigma, source).unwrap().automaton().clone()
}

fn ingest_formula_request(id: i64, source: &str, props: &[&str]) -> String {
    let props_json = Json::Arr(props.iter().map(|p| Json::str(*p)).collect());
    Json::obj([
        ("id", Json::Int(id)),
        ("method", Json::str("ingest")),
        (
            "params",
            Json::obj([
                ("kind", Json::str("formula")),
                ("props", props_json),
                ("source", Json::str(source)),
            ]),
        ),
    ])
    .to_string()
}

fn golden_ingest(id: i64, aut: &OmegaAutomaton, known: bool) -> String {
    Json::obj([
        ("id", Json::Int(id)),
        (
            "result",
            Json::obj([
                ("artifact", Json::str(aut.content_hash().to_string())),
                ("kind", Json::str("automaton")),
                ("known", Json::Bool(known)),
                ("states", Json::Int(aut.num_states() as i64)),
                ("evicted", Json::Arr(vec![])),
            ]),
        ),
    ])
    .to_string()
}

fn stats_json(s: &hierarchy_core::automata::analysis::AnalysisStats) -> Json {
    Json::obj([
        ("scc_passes", Json::Int(s.scc_passes as i64)),
        ("scc_state_visits", Json::Int(s.scc_state_visits as i64)),
        ("scc_hits", Json::Int(s.scc_hits as i64)),
        ("products_built", Json::Int(s.products_built as i64)),
        ("product_hits", Json::Int(s.product_hits as i64)),
        ("inclusion_checks", Json::Int(s.inclusion_checks as i64)),
        ("inclusion_hits", Json::Int(s.inclusion_hits as i64)),
    ])
}

/// Replays the daemon's classify endpoint against a reference context:
/// `queries_before` selects the cold (0) or warm (≥1) response.
fn golden_classify(id: i64, ctx: &Analysis, warm: bool) -> String {
    let before = ctx.stats_total();
    let c = ctx.classification().clone();
    let delta = ctx.stats_total().delta_since(before);
    let class = HierarchyClass::from_classification(&c);
    Json::obj([
        ("id", Json::Int(id)),
        (
            "result",
            Json::obj([
                (
                    "artifact",
                    Json::str(ctx.automaton().content_hash().to_string()),
                ),
                ("class", Json::str(class.to_string())),
                ("strictest", Json::str(c.strictest_class_name())),
                ("borel", Json::str(c.borel_name())),
                ("safety", Json::Bool(c.is_safety)),
                ("guarantee", Json::Bool(c.is_guarantee)),
                ("obligation", Json::Bool(c.is_obligation)),
                ("recurrence", Json::Bool(c.is_recurrence)),
                ("persistence", Json::Bool(c.is_persistence)),
                ("simple_reactivity", Json::Bool(c.is_simple_reactivity)),
                (
                    "obligation_index",
                    match c.obligation_index {
                        Some(k) => Json::Int(k as i64),
                        None => Json::Null,
                    },
                ),
                ("reactivity_index", Json::Int(c.reactivity_index as i64)),
                ("warm", Json::Bool(warm)),
                ("stats", stats_json(&delta)),
            ]),
        ),
    ])
    .to_string()
}

// ---- the golden session ---------------------------------------------

#[test]
fn golden_running_examples_session() {
    let mut daemon = Daemon::spawn(&[]);
    let mut id = 0i64;
    let mut next = || {
        id += 1;
        id
    };

    // Ingest + cold/warm classify for each running example, with the
    // expected bytes replayed on a reference Analysis per artifact.
    for (source, props) in RUNNING_EXAMPLES {
        let aut = compile(source, props);
        let reference = Analysis::new(aut.clone());

        let i = next();
        let got = daemon.request(&ingest_formula_request(i, source, props));
        assert_eq!(got, golden_ingest(i, &aut, false), "ingest {source}");

        let hash = aut.content_hash().to_string();
        let classify = |id: i64| {
            format!(
                "{{\"id\":{id},\"method\":\"classify\",\"params\":{{\"artifact\":\"{hash}\"}}}}"
            )
        };
        let i = next();
        let got = daemon.request(&classify(i));
        assert_eq!(got, golden_classify(i, &reference, false), "cold {source}");
        let i = next();
        let got = daemon.request(&classify(i));
        assert_eq!(got, golden_classify(i, &reference, true), "warm {source}");
    }

    // Re-ingesting a running example is a dedup hit, byte-for-byte.
    let mux = compile(RUNNING_EXAMPLES[0].0, RUNNING_EXAMPLES[0].1);
    let i = next();
    let got = daemon.request(&ingest_formula_request(
        i,
        RUNNING_EXAMPLES[0].0,
        RUNNING_EXAMPLES[0].1,
    ));
    assert_eq!(got, golden_ingest(i, &mux, true), "re-ingest dedups");

    daemon.shutdown();
}

#[test]
fn golden_lint_include_and_evict() {
    let mut daemon = Daemon::spawn(&[]);

    let gp = compile("G p", &["p"]);
    let gfp = compile("G F p", &["p"]);
    for (i, (source, props)) in [("G p", &["p"] as &[&str]), ("G F p", &["p"])]
        .iter()
        .enumerate()
    {
        daemon.request(&ingest_formula_request(i as i64, source, props));
    }
    let gp_hash = gp.content_hash().to_string();
    let gfp_hash = gfp.content_hash().to_string();

    // Lint: bytes replayed through the same lint + report_to_json path.
    let reference = Analysis::new(gp.clone());
    let diags = lint_automaton_ctx(&reference);
    let want = Json::obj([
        ("id", Json::Int(10)),
        (
            "result",
            Json::obj([
                ("artifact", Json::str(gp_hash.clone())),
                ("kind", Json::str("automaton")),
                ("count", Json::Int(diags.len() as i64)),
                ("diagnostics", Json::Raw(report_to_json(&diags))),
                ("warm", Json::Bool(false)),
            ]),
        ),
    ])
    .to_string();
    let got = daemon.request(&format!(
        "{{\"id\":10,\"method\":\"lint\",\"params\":{{\"artifact\":\"{gp_hash}\"}}}}"
    ));
    assert_eq!(got, want, "lint golden");

    // include: G p ⊆ G F p strictly; the reverse, asked with
    // "witness":true, carries a lasso whose symbols replay from the
    // library's counterexample extractor (without the flag the verdict
    // comes back alone — the witness tour is opt-in).
    let got = daemon.request(&format!(
        "{{\"id\":11,\"method\":\"include\",\"params\":{{\"lhs\":\"{gp_hash}\",\"rhs\":\"{gfp_hash}\"}}}}"
    ));
    let want = Json::obj([
        ("id", Json::Int(11)),
        (
            "result",
            Json::obj([
                ("lhs", Json::str(gp_hash.clone())),
                ("rhs", Json::str(gfp_hash.clone())),
                ("included", Json::Bool(true)),
                ("equivalent", Json::Bool(false)),
                ("counterexample", Json::Null),
            ]),
        ),
    ])
    .to_string();
    assert_eq!(got, want, "inclusion golden");

    let lasso = inclusion::inclusion_counterexample(&gfp, &gp).expect("G F p ⊄ G p");
    let names = |syms: &[Symbol]| {
        Json::Arr(
            syms.iter()
                .map(|&s| Json::str(gfp.alphabet().name(s)))
                .collect(),
        )
    };
    // Verdict-only by default…
    let got = daemon.request(&format!(
        "{{\"id\":12,\"method\":\"include\",\"params\":{{\"lhs\":\"{gfp_hash}\",\"rhs\":\"{gp_hash}\"}}}}"
    ));
    let bare = |counterexample: Json| {
        Json::obj([
            ("id", Json::Int(12)),
            (
                "result",
                Json::obj([
                    ("lhs", Json::str(gfp_hash.clone())),
                    ("rhs", Json::str(gp_hash.clone())),
                    ("included", Json::Bool(false)),
                    ("equivalent", Json::Bool(false)),
                    ("counterexample", counterexample),
                ]),
            ),
        ])
        .to_string()
    };
    assert_eq!(got, bare(Json::Null), "verdict-only inclusion golden");
    // …and the lasso on request.
    let got = daemon.request(&format!(
        "{{\"id\":12,\"method\":\"include\",\"params\":{{\"lhs\":\"{gfp_hash}\",\"rhs\":\"{gp_hash}\",\"witness\":true}}}}"
    ));
    let want = bare(Json::obj([
        ("stem", names(lasso.spoke())),
        ("cycle", names(lasso.cycle())),
    ]));
    assert_eq!(got, want, "counterexample golden");

    // evict: true once, false after.
    let got = daemon.request(&format!(
        "{{\"id\":13,\"method\":\"evict\",\"params\":{{\"artifact\":\"{gp_hash}\"}}}}"
    ));
    assert_eq!(
        got,
        format!("{{\"id\":13,\"result\":{{\"evicted\":true}}}}")
    );
    let got = daemon.request(&format!(
        "{{\"id\":14,\"method\":\"evict\",\"params\":{{\"artifact\":\"{gp_hash}\"}}}}"
    ));
    assert_eq!(
        got,
        format!("{{\"id\":14,\"result\":{{\"evicted\":false}}}}")
    );
    let got = daemon.request(&format!(
        "{{\"id\":15,\"method\":\"classify\",\"params\":{{\"artifact\":\"{gp_hash}\"}}}}"
    ));
    assert_eq!(
        got,
        format!(
            "{{\"id\":15,\"error\":{{\"code\":-32001,\"message\":\"unknown artifact {gp_hash}\"}}}}"
        )
    );

    daemon.shutdown();
}

#[test]
fn golden_program_check_and_batches() {
    let mut daemon = Daemon::spawn(&[]);

    // Program ingest from the catalogue, with the program's own hash.
    let program = absint::catalogue()
        .into_iter()
        .find(|(n, _)| *n == "mux-sem")
        .unwrap()
        .1;
    let prog_hash = program.content_hash().to_string();
    let got = daemon.request(
        "{\"id\":1,\"method\":\"ingest\",\"params\":{\"kind\":\"program\",\"name\":\"mux-sem\"}}",
    );
    assert_eq!(
        got,
        format!(
            "{{\"id\":1,\"result\":{{\"artifact\":\"{prog_hash}\",\"kind\":\"program\",\"known\":false,\"name\":\"mux-sem\",\"evicted\":[]}}}}"
        )
    );

    // Program lint golden.
    let diags = lint_abstract_program(&program).unwrap();
    let got = daemon.request(&format!(
        "{{\"id\":2,\"method\":\"lint\",\"params\":{{\"artifact\":\"{prog_hash}\"}}}}"
    ));
    let want = Json::obj([
        ("id", Json::Int(2)),
        (
            "result",
            Json::obj([
                ("artifact", Json::str(prog_hash.clone())),
                ("kind", Json::str("program")),
                ("count", Json::Int(diags.len() as i64)),
                ("diagnostics", Json::Raw(report_to_json(&diags))),
                ("warm", Json::Bool(false)),
            ]),
        ),
    ])
    .to_string();
    assert_eq!(got, want, "program lint golden");

    // check: mutual exclusion discharged in the abstract; golden stats
    // replayed through the same checker entry point.
    let mux = compile("G !(c1 & c2)", &["c1", "c2", "t1", "t2"]);
    let mux_hash = mux.content_hash().to_string();
    daemon.request(&ingest_formula_request(
        3,
        "G !(c1 & c2)",
        &["c1", "c2", "t1", "t2"],
    ));
    let sigma = mux.alphabet().clone();
    let (verdict, stats) =
        check_with_invariants(&program, &sigma, &mux, DomainKind::ValueSets).unwrap();
    assert!(verdict.holds());
    let got = daemon.request(&format!(
        "{{\"id\":4,\"method\":\"check\",\"params\":{{\"program\":\"{prog_hash}\",\"property\":\"{mux_hash}\",\"domain\":\"value-sets\"}}}}"
    ));
    let want = Json::obj([
        ("id", Json::Int(4)),
        (
            "result",
            Json::obj([
                ("verdict", Json::str("holds")),
                ("counterexample", Json::Null),
                (
                    "stats",
                    Json::obj([
                        ("product_states", Json::Int(stats.product_states as i64)),
                        (
                            "pruned_product_states",
                            Json::Int(stats.pruned_product_states as i64),
                        ),
                        ("abstract_pairs", Json::Int(stats.abstract_pairs as i64)),
                        ("discharged", Json::Bool(stats.discharged)),
                        (
                            "certificate_ok",
                            match stats.certificate_ok {
                                Some(b) => Json::Bool(b),
                                None => Json::Null,
                            },
                        ),
                    ]),
                ),
            ]),
        ),
    ])
    .to_string();
    assert_eq!(got, want, "check golden");
    assert!(got.contains("\"discharged\":true"), "safety discharged");

    // A violated check: token-ring-stalled has an unfair loop, so the
    // response carries a concrete lasso over system states.
    let stalled = absint::catalogue()
        .into_iter()
        .find(|(n, _)| *n == "token-ring-stalled")
        .unwrap()
        .1;
    let stalled_hash = stalled.content_hash().to_string();
    daemon.request(
        "{\"id\":5,\"method\":\"ingest\",\"params\":{\"kind\":\"program\",\"name\":\"token-ring-stalled\"}}",
    );
    let got = daemon.request(&format!(
        "{{\"id\":6,\"method\":\"check\",\"params\":{{\"program\":\"{stalled_hash}\",\"property\":\"{mux_hash}\",\"domain\":\"value-sets\"}}}}"
    ));
    let resp = Json::parse(&got).unwrap();
    let verdict_str = resp
        .get("result")
        .and_then(|r| r.get("verdict"))
        .and_then(Json::as_str)
        .map(str::to_string);
    let direct = check_with_invariants(&stalled, &sigma, &mux, DomainKind::ValueSets);
    match direct {
        Ok((v, _)) => {
            let want = if v.holds() { "holds" } else { "violated" };
            assert_eq!(verdict_str.as_deref(), Some(want), "verdict identity");
        }
        Err(_) => {
            assert!(resp.get("error").is_some(), "error identity");
        }
    }

    // Batches: results arrive in request order and agree with singles.
    let fp = compile("F p", &["p", "q"]);
    daemon.request(&ingest_formula_request(7, "F p", &["p", "q"]));
    let fp_hash = fp.content_hash().to_string();
    let got = daemon.request(&format!(
        "{{\"id\":8,\"method\":\"classify_batch\",\"params\":{{\"artifacts\":[\"{mux_hash}\",\"{fp_hash}\"]}}}}"
    ));
    let resp = Json::parse(&got).unwrap();
    let results = resp
        .get("result")
        .and_then(|r| r.get("results"))
        .and_then(Json::as_arr)
        .expect("batch result")
        .to_vec();
    assert_eq!(results.len(), 2);
    assert_eq!(
        results[0].get("class").and_then(Json::as_str),
        Some("safety")
    );
    assert_eq!(
        results[1].get("class").and_then(Json::as_str),
        Some("guarantee")
    );
    let got = daemon.request(&format!(
        "{{\"id\":9,\"method\":\"lint_batch\",\"params\":{{\"artifacts\":[\"{mux_hash}\",\"{prog_hash}\"]}}}}"
    ));
    let resp = Json::parse(&got).unwrap();
    let results = resp
        .get("result")
        .and_then(|r| r.get("results"))
        .and_then(Json::as_arr)
        .expect("lint batch result")
        .to_vec();
    assert_eq!(results.len(), 2);
    assert_eq!(
        results[1].get("count").and_then(Json::as_int),
        Some(diags.len() as i64)
    );

    daemon.shutdown();
}

// ---- the suite audit ------------------------------------------------

/// Replays the daemon's `audit` response on reference contexts. The
/// members, dominance edges, histogram and diagnostics come straight
/// from [`audit_suite_ctx`]; the `stats` delta is byte-identical only
/// because the caller replayed the store's ingest-time equivalence
/// sweep on the same contexts first (see [`golden_audit_session`]).
fn golden_audit(id: i64, reference: &[(String, Analysis)], warm: bool) -> String {
    let items: Vec<(&str, &Analysis)> = reference
        .iter()
        .map(|(name, ctx)| (name.as_str(), ctx))
        .collect();
    let opts = AuditOptions {
        jobs: 1,
        ..AuditOptions::default()
    };
    let audit = audit_suite_ctx(&items, &opts).expect("one alphabet");
    let members: Vec<Json> = (0..audit.names.len())
        .map(|i| {
            Json::obj([
                ("artifact", Json::str(audit.names[i].clone())),
                ("class", Json::str(audit.classes[i])),
                ("representative", Json::Int(audit.representative[i] as i64)),
                ("warm", Json::Bool(warm)),
                (
                    "diagnostics",
                    Json::Raw(report_to_json(&audit.member_diagnostics[i])),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("id", Json::Int(id)),
        (
            "result",
            Json::obj([
                ("members", Json::Arr(members)),
                (
                    "dominance",
                    Json::Arr(
                        audit
                            .dominance
                            .iter()
                            .map(|&(a, b)| {
                                Json::Arr(vec![Json::Int(a as i64), Json::Int(b as i64)])
                            })
                            .collect(),
                    ),
                ),
                (
                    "histogram",
                    Json::obj(
                        audit
                            .histogram
                            .iter()
                            .map(|&(class, count)| (class, Json::Int(count as i64))),
                    ),
                ),
                (
                    "suite_diagnostics",
                    Json::Raw(report_to_json(&audit.suite_diagnostics)),
                ),
                ("clean", Json::Bool(audit.is_clean())),
                (
                    "prefilter",
                    Json::obj([
                        ("pairs", Json::Int(audit.prefilter.pairs as i64)),
                        (
                            "hash_decided",
                            Json::Int(audit.prefilter.hash_decided as i64),
                        ),
                        (
                            "oracle_calls",
                            Json::Int(audit.prefilter.oracle_calls as i64),
                        ),
                    ]),
                ),
                (
                    "deep_checks_skipped",
                    Json::Int(audit.deep_checks_skipped as i64),
                ),
                ("stats", stats_json(&audit.stats)),
            ]),
        ),
    ])
    .to_string()
}

#[test]
fn golden_audit_session() {
    // `--jobs 1` pins the daemon's audit worker count to the
    // reference's: the verdicts are jobs-invariant, the stats deltas
    // are not.
    let mut daemon = Daemon::spawn(&["--jobs", "1"]);
    let members: &[&str] = &["G (p -> F q)", "F p", "F G p", "G p | F q"];
    let props: &[&str] = &["p", "q"];

    let mut reference: Vec<(String, Analysis)> = Vec::new();
    for (i, source) in members.iter().enumerate() {
        let aut = compile(source, props);
        let got = daemon.request(&ingest_formula_request(i as i64, source, props));
        assert_eq!(got, golden_ingest(i as i64, &aut, false), "ingest {source}");
        // Replay the store's ingest-time equivalence sweep: each new
        // artifact is compared against every stored context through
        // `language_eq`, and those oracle runs leave memo state that
        // the audit's stats delta rides on.
        let hash = canonical::structural_hash(&aut);
        for (stored, ctx) in &reference {
            let verdict = canonical::language_eq(
                canonical::ArtifactHash::parse(stored).unwrap(),
                ctx,
                hash,
                &aut,
            );
            assert_eq!(verdict, Some(LanguageEq::Distinct), "{source} vs {stored}");
        }
        reference.push((hash.to_string(), Analysis::new(aut)));
    }

    let artifacts = reference
        .iter()
        .map(|(h, _)| format!("\"{h}\""))
        .collect::<Vec<_>>()
        .join(",");
    let audit_request = |id: i64| {
        format!("{{\"id\":{id},\"method\":\"audit\",\"params\":{{\"artifacts\":[{artifacts}]}}}}")
    };

    // Cold, then warm: the second audit rides the memoized inclusion
    // matrix, and the replay reproduces both stats deltas exactly.
    // (The replay itself must run in the same order — the first
    // `golden_audit` call is the one that warms the reference.)
    let got = daemon.request(&audit_request(30));
    assert_eq!(
        got,
        golden_audit(30, &reference, false),
        "cold audit golden"
    );
    let got = daemon.request(&audit_request(31));
    assert_eq!(got, golden_audit(31, &reference, true), "warm audit golden");
    assert!(
        !got.contains("\"inclusion_hits\":0"),
        "warm audit must report memo hits, got {got}"
    );

    // Error shapes. An empty suite and a negative cap are parameter
    // errors; a member of a different alphabet is the operand-mismatch
    // code with the library's own message, naming members by hash.
    let got = daemon.request("{\"id\":40,\"method\":\"audit\",\"params\":{\"artifacts\":[]}}");
    assert_eq!(
        got,
        "{\"id\":40,\"error\":{\"code\":-32602,\"message\":\"audit needs at least one artifact\"}}"
    );
    let first = &reference[0].0;
    let got = daemon.request(&format!(
        "{{\"id\":41,\"method\":\"audit\",\"params\":{{\"artifacts\":[\"{first}\"],\"cap\":-1}}}}"
    ));
    assert_eq!(
        got,
        "{\"id\":41,\"error\":{\"code\":-32602,\"message\":\"cap must be a non-negative integer\"}}"
    );

    let mux = compile("G !(c1 & c2)", &["c1", "c2", "t1", "t2"]);
    let mux_hash = mux.content_hash().to_string();
    daemon.request(&ingest_formula_request(
        42,
        "G !(c1 & c2)",
        &["c1", "c2", "t1", "t2"],
    ));
    let got = daemon.request(&format!(
        "{{\"id\":43,\"method\":\"audit\",\"params\":{{\"artifacts\":[\"{first}\",\"{mux_hash}\"]}}}}"
    ));
    assert_eq!(
        got,
        format!(
            "{{\"id\":43,\"error\":{{\"code\":-32003,\"message\":\"suite members \\\"{first}\\\" and \\\"{mux_hash}\\\" read different alphabets\"}}}}"
        ),
        "incompatible-alphabet audit error shape"
    );

    daemon.shutdown();
}

// ---- error shapes (fully literal goldens) ---------------------------

#[test]
fn golden_error_shapes() {
    let mut daemon = Daemon::spawn(&[]);
    let cases: &[(&str, &str)] = &[
        // -32700: not JSON at all (id unrecoverable → null).
        (
            "this is not json",
            "{\"id\":null,\"error\":{\"code\":-32700,\"message\":\"parse error: unexpected byte 't' at 0\"}}",
        ),
        // -32600: valid JSON, no method.
        (
            "{\"id\":9}",
            "{\"id\":9,\"error\":{\"code\":-32600,\"message\":\"missing method\"}}",
        ),
        // -32600: id of a bad type.
        (
            "{\"id\":[1],\"method\":\"stats\"}",
            "{\"id\":null,\"error\":{\"code\":-32600,\"message\":\"id must be a number, string or absent\"}}",
        ),
        // -32601: unknown method.
        (
            "{\"id\":1,\"method\":\"transmogrify\"}",
            "{\"id\":1,\"error\":{\"code\":-32601,\"message\":\"unknown method \\\"transmogrify\\\"\"}}",
        ),
        // -32602: missing params.
        (
            "{\"id\":2,\"method\":\"classify\"}",
            "{\"id\":2,\"error\":{\"code\":-32602,\"message\":\"missing string param \\\"artifact\\\"\"}}",
        ),
        // -32602: params of the wrong type.
        (
            "{\"id\":3,\"method\":\"classify\",\"params\":[]}",
            "{\"id\":3,\"error\":{\"code\":-32602,\"message\":\"params must be an object\"}}",
        ),
        // -32602: a hash that is not a hash.
        (
            "{\"id\":4,\"method\":\"classify\",\"params\":{\"artifact\":\"zz\"}}",
            "{\"id\":4,\"error\":{\"code\":-32602,\"message\":\"artifact must be a 32-digit hex hash\"}}",
        ),
        // -32001: a well-formed hash never ingested.
        (
            "{\"id\":5,\"method\":\"classify\",\"params\":{\"artifact\":\"00112233445566778899aabbccddeeff\"}}",
            "{\"id\":5,\"error\":{\"code\":-32001,\"message\":\"unknown artifact 00112233445566778899aabbccddeeff\"}}",
        ),
        // -32002: unknown catalogue program.
        (
            "{\"id\":6,\"method\":\"ingest\",\"params\":{\"kind\":\"program\",\"name\":\"quicksort\"}}",
            "{\"id\":6,\"error\":{\"code\":-32002,\"message\":\"unknown catalogue program \\\"quicksort\\\"\"}}",
        ),
        // -32002: malformed HOA.
        (
            "{\"id\":7,\"method\":\"ingest\",\"params\":{\"kind\":\"automaton\",\"hoa\":\"HOA: v2\"}}",
            "{\"id\":7,\"error\":{\"code\":-32002,\"message\":\"HOA parse error: expected \\\"HOA: v1\\\" header, found Some(\\\"HOA: v2\\\")\"}}",
        ),
        // -32602: unknown ingest kind.
        (
            "{\"id\":8,\"method\":\"ingest\",\"params\":{\"kind\":\"sonnet\"}}",
            "{\"id\":8,\"error\":{\"code\":-32602,\"message\":\"kind must be automaton, formula, regex or program, got \\\"sonnet\\\"\"}}",
        ),
    ];
    for (request, want) in cases {
        let got = daemon.request(request);
        assert_eq!(&got, want, "for request {request:?}");
    }

    // -32003 needs live artifacts: alphabet mismatch between operands.
    daemon.request(&ingest_formula_request(20, "G p", &["p"]));
    daemon.request(&ingest_formula_request(21, "G q", &["p", "q"]));
    let a = compile("G p", &["p"]).content_hash().to_string();
    let b = compile("G q", &["p", "q"]).content_hash().to_string();
    let got = daemon.request(&format!(
        "{{\"id\":22,\"method\":\"include\",\"params\":{{\"lhs\":\"{a}\",\"rhs\":\"{b}\"}}}}"
    ));
    assert_eq!(
        got,
        "{\"id\":22,\"error\":{\"code\":-32003,\"message\":\"lhs and rhs observe different alphabets\"}}"
    );

    daemon.shutdown();
}

// ---- transport details ----------------------------------------------

#[test]
fn blank_lines_and_missing_ids() {
    let mut daemon = Daemon::spawn(&[]);
    // Blank lines produce no response: the next real request's answer
    // arrives first, proving nothing was emitted in between.
    writeln!(daemon.stdin, "   \n\n{{\"id\":77,\"method\":\"stats\"}}").unwrap();
    daemon.stdin.flush().unwrap();
    let mut line = String::new();
    daemon.stdout.read_line(&mut line).unwrap();
    let resp = Json::parse(line.trim_end()).unwrap();
    assert_eq!(resp.get("id").and_then(Json::as_int), Some(77));

    // A request with no id still answers, with id null.
    let got = daemon.request("{\"method\":\"stats\"}");
    assert!(got.starts_with("{\"id\":null,\"result\":{"), "got {got}");
    daemon.shutdown();
}

#[test]
fn lru_eviction_and_reingest_reproduce_identical_responses() {
    let mut daemon = Daemon::spawn(&["--capacity", "2"]);
    let f1 = compile("G p", &["p", "q"]);
    let f2 = compile("F p", &["p", "q"]);
    let f3 = compile("G F p", &["p", "q"]);
    let (h1, h2, h3) = (
        f1.content_hash().to_string(),
        f2.content_hash().to_string(),
        f3.content_hash().to_string(),
    );

    daemon.request(&ingest_formula_request(1, "G p", &["p", "q"]));
    daemon.request(&ingest_formula_request(2, "F p", &["p", "q"]));
    let classify = |id: i64, hash: &str| {
        format!("{{\"id\":{id},\"method\":\"classify\",\"params\":{{\"artifact\":\"{hash}\"}}}}")
    };
    // Warm both, then make f1 the LRU victim by touching f2 last.
    let cold_f1 = daemon.request(&classify(3, &h1));
    daemon.request(&classify(4, &h2));

    // The third ingest overflows capacity 2 and reports the victim.
    let got = daemon.request(&ingest_formula_request(5, "G F p", &["p", "q"]));
    let resp = Json::parse(&got).unwrap();
    let evicted: Vec<String> = resp
        .get("result")
        .and_then(|r| r.get("evicted"))
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|h| h.as_str().unwrap().to_string())
        .collect();
    assert_eq!(evicted, vec![h1.clone()], "LRU victim is f1");
    assert_eq!(
        resp.get("result")
            .and_then(|r| r.get("artifact"))
            .and_then(Json::as_str),
        Some(h3.as_str())
    );

    // The victim is gone; the survivors are warm.
    let got = daemon.request(&classify(6, &h1));
    assert!(got.contains("\"code\":-32001"), "evicted artifact unknown");

    // Re-ingest after eviction: cold again, and the classify response is
    // byte-identical to the pre-eviction one (same id ⇒ same bytes) —
    // content addressing makes eviction invisible to verdicts and stats.
    let got = daemon.request(&ingest_formula_request(7, "G p", &["p", "q"]));
    assert_eq!(got, {
        let mut expected = golden_ingest(7, &f1, false);
        // Room had to be made again: f2 was the oldest untouched entry.
        expected = expected.replace("\"evicted\":[]", &format!("\"evicted\":[\"{h2}\"]"));
        expected
    });
    let got = daemon.request(&classify(3, &h1));
    assert_eq!(
        got, cold_f1,
        "re-ingested artifact reproduces verdict and stats"
    );

    daemon.shutdown();
}

#[test]
fn regex_and_hoa_ingest_collide_with_equivalent_formulas() {
    let mut daemon = Daemon::spawn(&[]);
    // E(Σ*b) over letters {a, b}: "eventually b", byte-exact against the
    // regex's own library compilation.
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let phi = hierarchy_core::lang::FinitaryProperty::parse(&sigma, ".*b").unwrap();
    let regex_aut = hierarchy_core::lang::operators::e(&phi);
    let got = daemon.request(
        "{\"id\":1,\"method\":\"ingest\",\"params\":{\"kind\":\"regex\",\"letters\":[\"a\",\"b\"],\"pattern\":\".*b\",\"operator\":\"E\"}}",
    );
    assert_eq!(got, golden_ingest(1, &regex_aut, false));

    // A formula artifact re-submitted through its HOA export lands on
    // the same hash (known:true) — content addressing is format-blind.
    // (Proposition alphabets round-trip by name through HOA; the letter
    // alphabet above would come back renamed to bit propositions, which
    // is a *different* artifact by design.)
    let aut = compile("F p", &["p"]);
    let hash = aut.content_hash().to_string();
    let got = daemon.request(&ingest_formula_request(10, "F p", &["p"]));
    assert_eq!(got, golden_ingest(10, &aut, false));
    let hoa_src = hoa::omega_to_hoa(&aut);
    let req = Json::obj([
        ("id", Json::Int(2)),
        ("method", Json::str("ingest")),
        (
            "params",
            Json::obj([
                ("kind", Json::str("automaton")),
                ("hoa", Json::str(hoa_src)),
            ]),
        ),
    ])
    .to_string();
    let got = daemon.request(&req);
    let resp = Json::parse(&got).unwrap();
    let result = resp.get("result").expect("hoa ingest succeeds");
    assert_eq!(result.get("known").and_then(Json::as_bool), Some(true));
    assert_eq!(
        result.get("artifact").and_then(Json::as_str),
        Some(hash.as_str())
    );

    daemon.shutdown();
}

// ---- exit codes ------------------------------------------------------

#[test]
fn exit_codes() {
    // --help exits 0 and prints usage.
    let out = Command::new(env!("CARGO_BIN_EXE_spec-serve"))
        .arg("--help")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: spec-serve"));

    // Usage errors exit 2.
    for args in [
        &["--capacity", "zero"] as &[&str],
        &["--capacity"],
        &["--jobs", "0"],
        &["--listen"],
        &["--frobnicate"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_spec-serve"))
            .args(args)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: spec-serve"),
            "usage goes to stderr for {args:?}"
        );
    }

    // EOF on stdin exits 0 (covered again by every shutdown() above).
    let mut child = Command::new(env!("CARGO_BIN_EXE_spec-serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .unwrap();
    drop(child.stdin.take());
    assert_eq!(child.wait().unwrap().code(), Some(0));
}
