//! Concurrency soak: N client threads hammer one daemon over TCP with a
//! seeded mixed workload while the main thread drives stdio. Every
//! response must pair with its request (ids echo exactly — no lost,
//! duplicated or cross-wired responses), every verdict must match a
//! direct library call on the same artifact, and the store's cache-hit
//! counters must be monotone under contention. Runs both plain and with
//! `HIERARCHY_THREADS=2` via `scripts/tier1.sh`.

use hierarchy_core::automata::analysis::Analysis;
use hierarchy_core::automata::random::rng::{Rng, SeedableRng, StdRng};
use hierarchy_core::lint::{audit_suite, AuditOptions};
use hierarchy_core::prelude::*;
use hierarchy_core::{HierarchyClass, Property};
use hierarchy_serve::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};

const CLIENTS: usize = 4;
const ITERATIONS: usize = 60;

/// The seeded artifact mix: all over one proposition alphabet so every
/// pair is a legal `include` operand and the whole mix is a legal
/// `audit` suite.
const WORKLOAD: &[&str] = &[
    "G p",
    "F p",
    "G F p",
    "F G p",
    "G (p -> F q)",
    "G p | F q",
    "G F p & F G q",
];
const PROPS: &[&str] = &["p", "q"];

struct Expected {
    hash: String,
    class: String,
    lint_count: usize,
    automaton: OmegaAutomaton,
}

fn expectations() -> Vec<Expected> {
    let sigma = Alphabet::of_propositions(PROPS.iter().copied()).unwrap();
    WORKLOAD
        .iter()
        .map(|source| {
            let aut = Property::parse(&sigma, source).unwrap().automaton().clone();
            let ctx = Analysis::new(aut.clone());
            let class =
                HierarchyClass::from_classification(&ctx.classification().clone()).to_string();
            let lint_count = hierarchy_core::lint::lint_automaton_ctx(&ctx).len();
            Expected {
                hash: aut.content_hash().to_string(),
                class,
                lint_count,
                automaton: aut,
            }
        })
        .collect()
}

fn request_over(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    writeln!(stream, "{line}").expect("send");
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).expect("receive");
    assert!(response.ends_with('\n'), "connection died on {line:?}");
    Json::parse(response.trim_end()).expect("well-formed response")
}

#[test]
fn soak_tcp_clients_agree_with_library_and_counters_stay_monotone() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_spec-serve"))
        .args(["--listen", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn spec-serve");
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());

    // The first stdout line announces the bound address.
    let mut announce = String::new();
    stdout.read_line(&mut announce).unwrap();
    let announce = Json::parse(announce.trim_end()).expect("announce event");
    assert_eq!(
        announce.get("event").and_then(Json::as_str),
        Some("listening")
    );
    let addr = announce
        .get("addr")
        .and_then(Json::as_str)
        .expect("bound address")
        .to_string();

    // Seed the store over stdio and pin down the expected verdicts.
    let expected = expectations();
    for (i, source) in WORKLOAD.iter().enumerate() {
        let req = Json::obj([
            ("id", Json::Int(i as i64)),
            ("method", Json::str("ingest")),
            (
                "params",
                Json::obj([
                    ("kind", Json::str("formula")),
                    (
                        "props",
                        Json::Arr(PROPS.iter().map(|p| Json::str(*p)).collect()),
                    ),
                    ("source", Json::str(*source)),
                ]),
            ),
        ])
        .to_string();
        writeln!(stdin, "{req}").unwrap();
        stdin.flush().unwrap();
        let mut resp = String::new();
        stdout.read_line(&mut resp).unwrap();
        let resp = Json::parse(resp.trim_end()).unwrap();
        let hash = resp
            .get("result")
            .and_then(|r| r.get("artifact"))
            .and_then(Json::as_str)
            .expect("seed ingest succeeds");
        assert_eq!(hash, expected[i].hash, "seed hash identity for {source}");
    }

    // Precompute the full inclusion matrix directly from the library.
    let inclusion_matrix: Vec<Vec<bool>> = expected
        .iter()
        .map(|a| {
            let ctx = Analysis::new(a.automaton.clone());
            expected
                .iter()
                .map(|b| ctx.is_subset_of(&b.automaton))
                .collect()
        })
        .collect();

    // And the whole-workload suite audit: every concurrent `audit` call
    // on the warm store must reproduce these verdicts (stats and warm
    // flags vary with contention, the report does not).
    let suite: Vec<(String, OmegaAutomaton)> = expected
        .iter()
        .map(|e| (e.hash.clone(), e.automaton.clone()))
        .collect();
    let audit_expected = audit_suite(&suite, &AuditOptions::default()).expect("one alphabet");
    let audit_artifacts = expected
        .iter()
        .map(|e| format!("\"{}\"", e.hash))
        .collect::<Vec<_>>()
        .join(",");

    // Fan out the clients.
    let per_client_resolves: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let expected = &expected;
                let inclusion_matrix = &inclusion_matrix;
                let audit_expected = &audit_expected;
                let audit_artifacts = &audit_artifacts;
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(&addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut rng = StdRng::seed_from_u64(0xBEEF + client as u64);
                    let mut resolves = 0u64;
                    let mut last_hits = 0i64;
                    for i in 0..ITERATIONS {
                        // Unique id per request: any cross-wired or
                        // duplicated response trips the echo check.
                        let id = (client * 1_000_000 + i) as i64;
                        let op = rng.gen_range(0..9usize);
                        let pick = rng.gen_range(0..expected.len());
                        let resp = match op {
                            0..=3 => {
                                let hash = &expected[pick].hash;
                                let resp = request_over(
                                    &mut stream,
                                    &mut reader,
                                    &format!(
                                        "{{\"id\":{id},\"method\":\"classify\",\"params\":{{\"artifact\":\"{hash}\"}}}}"
                                    ),
                                );
                                resolves += 1;
                                assert_eq!(
                                    resp.get("result")
                                        .and_then(|r| r.get("class"))
                                        .and_then(Json::as_str),
                                    Some(expected[pick].class.as_str()),
                                    "verdict identity on {hash}"
                                );
                                resp
                            }
                            4 | 5 => {
                                let other = rng.gen_range(0..expected.len());
                                let (lhs, rhs) = (&expected[pick].hash, &expected[other].hash);
                                let resp = request_over(
                                    &mut stream,
                                    &mut reader,
                                    &format!(
                                        "{{\"id\":{id},\"method\":\"include\",\"params\":{{\"lhs\":\"{lhs}\",\"rhs\":\"{rhs}\"}}}}"
                                    ),
                                );
                                resolves += 2;
                                assert_eq!(
                                    resp.get("result")
                                        .and_then(|r| r.get("included"))
                                        .and_then(Json::as_bool),
                                    Some(inclusion_matrix[pick][other]),
                                    "inclusion identity {pick} vs {other}"
                                );
                                resp
                            }
                            6 => {
                                let hash = &expected[pick].hash;
                                let resp = request_over(
                                    &mut stream,
                                    &mut reader,
                                    &format!(
                                        "{{\"id\":{id},\"method\":\"lint\",\"params\":{{\"artifact\":\"{hash}\"}}}}"
                                    ),
                                );
                                resolves += 1;
                                assert_eq!(
                                    resp.get("result")
                                        .and_then(|r| r.get("count"))
                                        .and_then(Json::as_int),
                                    Some(expected[pick].lint_count as i64),
                                    "lint identity on {hash}"
                                );
                                resp
                            }
                            7 => {
                                // The whole-workload audit, repeated on
                                // the ever-warmer store: the report must
                                // stay byte-for-byte deterministic in
                                // its verdicts against the direct
                                // library audit, under full contention.
                                let resp = request_over(
                                    &mut stream,
                                    &mut reader,
                                    &format!(
                                        "{{\"id\":{id},\"method\":\"audit\",\"params\":{{\"artifacts\":[{audit_artifacts}]}}}}"
                                    ),
                                );
                                resolves += expected.len() as u64;
                                let result = resp.get("result").expect("audit succeeds");
                                assert_eq!(
                                    result.get("clean").and_then(Json::as_bool),
                                    Some(audit_expected.is_clean()),
                                    "audit cleanliness identity"
                                );
                                let members = result
                                    .get("members")
                                    .and_then(Json::as_arr)
                                    .expect("audit members")
                                    .to_vec();
                                assert_eq!(members.len(), expected.len());
                                for (k, m) in members.iter().enumerate() {
                                    assert_eq!(
                                        m.get("class").and_then(Json::as_str),
                                        Some(audit_expected.classes[k]),
                                        "audit class identity for member {k}"
                                    );
                                    assert_eq!(
                                        m.get("representative").and_then(Json::as_int),
                                        Some(audit_expected.representative[k] as i64),
                                        "audit representative identity for member {k}"
                                    );
                                }
                                let suite_diags = result
                                    .get("suite_diagnostics")
                                    .and_then(Json::as_arr)
                                    .expect("audit suite diagnostics")
                                    .len();
                                assert_eq!(
                                    suite_diags,
                                    audit_expected.suite_diagnostics.len(),
                                    "audit suite-diagnostic identity"
                                );
                                resp
                            }
                            _ => {
                                let resp = request_over(
                                    &mut stream,
                                    &mut reader,
                                    &format!("{{\"id\":{id},\"method\":\"stats\"}}"),
                                );
                                let hits = resp
                                    .get("result")
                                    .and_then(|r| r.get("hits"))
                                    .and_then(Json::as_int)
                                    .expect("stats has hits");
                                assert!(
                                    hits >= last_hits,
                                    "cache-hit counter went backwards: {last_hits} -> {hits}"
                                );
                                last_hits = hits;
                                resp
                            }
                        };
                        // The synchronous per-connection protocol plus
                        // exact id echo rules out lost or reordered
                        // responses.
                        assert_eq!(
                            resp.get("id").and_then(Json::as_int),
                            Some(id),
                            "response id must echo the request id"
                        );
                    }
                    resolves
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Global accounting: every resolve made it into the shared counters
    // (hits + misses covers them all; this workload never misses).
    let total_resolves: u64 = per_client_resolves.iter().sum();
    writeln!(stdin, "{{\"id\":999,\"method\":\"stats\"}}").unwrap();
    stdin.flush().unwrap();
    let mut resp = String::new();
    stdout.read_line(&mut resp).unwrap();
    let resp = Json::parse(resp.trim_end()).unwrap();
    let result = resp.get("result").unwrap();
    assert_eq!(
        result.get("hits").and_then(Json::as_int),
        Some(total_resolves as i64),
        "no resolve lost under {CLIENTS}-way contention"
    );
    assert_eq!(result.get("misses").and_then(Json::as_int), Some(0));
    assert_eq!(
        result.get("entries").and_then(Json::as_int),
        Some(WORKLOAD.len() as i64)
    );

    // Closing stdin shuts the daemon down cleanly even with the TCP
    // accept thread still parked.
    drop(stdin);
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(0), "clean shutdown on stdin EOF");
}
