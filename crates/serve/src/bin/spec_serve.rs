//! `spec-serve` — the hierarchy-as-a-service daemon.
//!
//! Speaks line-delimited JSON-RPC on stdin/stdout; with `--listen ADDR`
//! it additionally accepts TCP connections sharing the same artifact
//! store. Exits 0 when stdin reaches end-of-input, 2 on usage errors.
//!
//! ```text
//! spec-serve [--capacity N] [--jobs N] [--listen ADDR]
//! ```

use hierarchy_serve::Service;
use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: spec-serve [--capacity N] [--jobs N] [--listen ADDR]

A persistent classification daemon for the Manna-Pnueli hierarchy.
Reads one JSON-RPC request per line from stdin, writes one response
per line to stdout, and exits when stdin closes.

options:
  --capacity N   keep at most N artifacts live (LRU eviction; default 128)
  --jobs N       worker threads for the batch endpoints
                 (default: HIERARCHY_THREADS or the machine's cores)
  --listen ADDR  additionally accept TCP connections on ADDR
                 (e.g. 127.0.0.1:0 for an ephemeral port; the bound
                 address is announced on stdout as a \"listening\" event)
  --help         print this help

methods: ingest, classify, lint, include, check, stats, evict,
         classify_batch, lint_batch";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("spec-serve: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut capacity: usize = 128;
    let mut jobs: usize = hierarchy_serve::default_jobs();
    let mut listen_addr: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--capacity" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => capacity = n,
                _ => return usage_error("--capacity needs a positive integer"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => return usage_error("--jobs needs a positive integer"),
            },
            "--listen" => match args.next() {
                Some(addr) if !addr.is_empty() => listen_addr = Some(addr),
                _ => return usage_error("--listen needs an address"),
            },
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let service = Arc::new(Service::new(capacity, jobs));

    if let Some(addr) = listen_addr {
        let listener = match TcpListener::bind(&addr) {
            Ok(l) => l,
            Err(e) => return usage_error(&format!("cannot listen on {addr}: {e}")),
        };
        // Announce the actual address (ephemeral ports resolve here) so
        // clients can connect without racing the bind.
        let local = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let announce = format!("{{\"event\":\"listening\",\"addr\":\"{local}\"}}\n");
        if out
            .write_all(announce.as_bytes())
            .and_then(|()| out.flush())
            .is_err()
        {
            return ExitCode::FAILURE;
        }
        drop(out);
        let tcp_service = Arc::clone(&service);
        std::thread::spawn(move || {
            let _ = tcp_service.listen(listener);
        });
    }

    // Serve stdio on the main thread; EOF on stdin is the shutdown
    // signal (detached TCP connections die with the process).
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match service.serve(stdin.lock(), &mut stdout.lock()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(_) => ExitCode::FAILURE,
    }
}
