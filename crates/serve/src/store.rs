//! The content-addressed artifact store: live [`Analysis`] contexts and
//! programs behind a capacity-bounded LRU.
//!
//! Every artifact is keyed by its structural hash
//! ([`Servable::content_hash`]): the canonical quotient form for
//! automata (so α-equivalent submissions collide by construction), the
//! exact structural encoding for programs. On top of the hash key the
//! store runs an **equivalence sweep** at automaton ingest: a new hash
//! whose language equals an already-stored same-alphabet artifact (the
//! Angluin–Fisman oracle answers through the stored entry's warm
//! [`Analysis`]) is recorded as an *alias* of the stored entry instead
//! of a new entry — near-duplicate submissions across users converge on
//! one warm context even when their canonical forms differ (e.g. a
//! Büchi and an equivalent one-pair Streett condition).
//!
//! Eviction is least-recently-used over entries (aliases follow their
//! entry); the clock ticks on every resolve and ingest touch.

use hierarchy_core::automata::analysis::Analysis;
use hierarchy_core::automata::canonical::{self, ArtifactHash};
use hierarchy_core::automata::omega::OmegaAutomaton;
use hierarchy_core::fts::absint::Program;
use hierarchy_core::Servable;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Aggregate store counters, all monotone over a daemon's lifetime
/// (eviction does not roll anything back).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Ingest requests processed (including deduplicated ones).
    pub ingests: u64,
    /// Ingests resolved to an already-stored entry — by hash, by alias,
    /// or by the equivalence sweep.
    pub dedup_hits: u64,
    /// Queries resolved to a live entry.
    pub hits: u64,
    /// Queries naming an unknown (or evicted) artifact.
    pub misses: u64,
    /// Entries dropped by the LRU bound or explicit `evict`.
    pub evictions: u64,
}

/// What an entry holds.
pub enum Payload {
    /// A deterministic ω-automaton wrapped in its live [`Analysis`]
    /// context (classification, SCCs, products, inclusion verdicts all
    /// memoized across requests).
    Automaton(Box<Analysis>),
    /// A declarative guarded-command program.
    Program(Box<Program>),
}

/// One stored artifact.
pub struct Entry {
    /// The content hash (the store key, printed as 32 hex digits).
    pub hash: ArtifactHash,
    /// The artifact itself.
    pub payload: Payload,
    /// How the artifact first arrived (`"hoa"`, `"formula"`, `"regex"`,
    /// `"program"`) — informational, surfaced by `stats`.
    pub origin: &'static str,
    /// Number of queries served from this entry (not counting the
    /// ingests that created or deduplicated onto it).
    pub queries: AtomicU64,
}

impl Entry {
    /// The artifact kind tag (`"automaton"` / `"program"`).
    pub fn kind(&self) -> &'static str {
        match &self.payload {
            Payload::Automaton(_) => "automaton",
            Payload::Program(_) => "program",
        }
    }

    /// The analysis context, when this is an automaton entry.
    pub fn analysis(&self) -> Option<&Analysis> {
        match &self.payload {
            Payload::Automaton(a) => Some(a),
            Payload::Program(_) => None,
        }
    }

    /// The program, when this is a program entry.
    pub fn program(&self) -> Option<&Program> {
        match &self.payload {
            Payload::Automaton(_) => None,
            Payload::Program(p) => Some(p),
        }
    }
}

/// The outcome of an ingest.
pub struct Ingested {
    /// The (possibly pre-existing) entry now addressing the artifact.
    pub entry: Arc<Entry>,
    /// The hash the *submitted* artifact resolves under — equal to
    /// `entry.hash` unless the equivalence sweep aliased it.
    pub hash: ArtifactHash,
    /// Whether the artifact was already stored (hash, alias, or
    /// equivalence hit).
    pub known: bool,
    /// Hashes evicted by the LRU bound to make room, oldest first.
    pub evicted: Vec<ArtifactHash>,
}

/// The LRU store. Wrap it in a `Mutex` for concurrent use ([`Service`]
/// does); entry payloads are themselves thread-safe, so resolved
/// [`Arc<Entry>`]s can be queried outside the lock.
///
/// [`Service`]: crate::Service
pub struct Store {
    capacity: usize,
    clock: u64,
    entries: HashMap<ArtifactHash, (Arc<Entry>, u64)>,
    aliases: HashMap<ArtifactHash, ArtifactHash>,
    stats: StoreStats,
}

impl Store {
    /// An empty store holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Store {
        Store {
            capacity: capacity.max(1),
            clock: 0,
            entries: HashMap::new(),
            aliases: HashMap::new(),
            stats: StoreStats::default(),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entry count (aliases not counted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A snapshot of the aggregate counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn touch(&mut self, hash: ArtifactHash) {
        let stamp = self.tick();
        if let Some((_, used)) = self.entries.get_mut(&hash) {
            *used = stamp;
        }
    }

    /// Resolves a hash (following aliases) to a live entry, bumping its
    /// recency. `None` counts a miss.
    pub fn resolve(&mut self, hash: ArtifactHash) -> Option<Arc<Entry>> {
        let canonical = *self.aliases.get(&hash).unwrap_or(&hash);
        match self.entries.get(&canonical) {
            Some((entry, _)) => {
                let entry = Arc::clone(entry);
                self.touch(canonical);
                self.stats.hits += 1;
                Some(entry)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Drops an entry (and every alias onto it). Returns whether the
    /// hash named a live entry.
    pub fn evict(&mut self, hash: ArtifactHash) -> bool {
        let canonical = *self.aliases.get(&hash).unwrap_or(&hash);
        if self.entries.remove(&canonical).is_none() {
            return false;
        }
        self.aliases.retain(|_, target| *target != canonical);
        self.stats.evictions += 1;
        true
    }

    fn evict_lru(&mut self, keep: ArtifactHash) -> Vec<ArtifactHash> {
        let mut evicted = Vec::new();
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(h, _)| **h != keep)
                .min_by_key(|(_, (_, used))| *used)
                .map(|(h, _)| *h);
            match victim {
                Some(h) => {
                    self.evict(h);
                    evicted.push(h);
                }
                None => break, // capacity 0 with only `keep` present
            }
        }
        evicted
    }

    /// Ingests an automaton: hash → alias → equivalence sweep → fresh
    /// entry, in that order (see the module docs).
    pub fn ingest_automaton(&mut self, aut: OmegaAutomaton, origin: &'static str) -> Ingested {
        self.stats.ingests += 1;
        let hash = aut.content_hash();
        let canonical = *self.aliases.get(&hash).unwrap_or(&hash);
        if let Some((entry, _)) = self.entries.get(&canonical) {
            let entry = Arc::clone(entry);
            self.touch(canonical);
            self.stats.dedup_hits += 1;
            return Ingested {
                entry,
                hash,
                known: true,
                evicted: Vec::new(),
            };
        }
        // Equivalence sweep: the hash is new, but the language may not
        // be. [`canonical::language_eq`] (shared with the suite
        // auditor's SUITE002) rejects cross-alphabet entries outright
        // and only then asks the oracle — through the stored entry's
        // warm context, so repeat sweeps against the same store
        // amortize.
        let candidate = self.entries.values().find_map(|(entry, _)| {
            let ctx = entry.analysis()?;
            canonical::language_eq(entry.hash, ctx, hash, &aut)
                .is_some_and(|v| v.is_equal())
                .then(|| Arc::clone(entry))
        });
        if let Some(entry) = candidate {
            let target = entry.hash;
            self.aliases.insert(hash, target);
            self.touch(target);
            self.stats.dedup_hits += 1;
            return Ingested {
                entry,
                hash,
                known: true,
                evicted: Vec::new(),
            };
        }
        let entry = Arc::new(Entry {
            hash,
            payload: Payload::Automaton(Box::new(Analysis::new(aut))),
            origin,
            queries: AtomicU64::new(0),
        });
        let stamp = self.tick();
        self.entries.insert(hash, (Arc::clone(&entry), stamp));
        let evicted = self.evict_lru(hash);
        Ingested {
            entry,
            hash,
            known: false,
            evicted,
        }
    }

    /// Ingests a program (hash-keyed only; programs have no equivalence
    /// sweep).
    pub fn ingest_program(&mut self, program: Program) -> Ingested {
        self.stats.ingests += 1;
        let hash = program.content_hash();
        if let Some((entry, _)) = self.entries.get(&hash) {
            let entry = Arc::clone(entry);
            self.touch(hash);
            self.stats.dedup_hits += 1;
            return Ingested {
                entry,
                hash,
                known: true,
                evicted: Vec::new(),
            };
        }
        let entry = Arc::new(Entry {
            hash,
            payload: Payload::Program(Box::new(program)),
            origin: "program",
            queries: AtomicU64::new(0),
        });
        let stamp = self.tick();
        self.entries.insert(hash, (Arc::clone(&entry), stamp));
        let evicted = self.evict_lru(hash);
        Ingested {
            entry,
            hash,
            known: false,
            evicted,
        }
    }

    /// Every live entry, sorted by hash (a deterministic order for the
    /// `stats` endpoint).
    pub fn list(&self) -> Vec<Arc<Entry>> {
        let mut all: Vec<Arc<Entry>> = self.entries.values().map(|(e, _)| Arc::clone(e)).collect();
        all.sort_by_key(|e| e.hash);
        all
    }

    /// Marks a served query on an entry (atomic; callable outside the
    /// store lock).
    pub fn record_query(entry: &Entry) -> u64 {
        entry.queries.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_core::automata::acceptance::Acceptance;
    use hierarchy_core::automata::alphabet::Alphabet;
    use hierarchy_core::fts::absint;

    fn tracker(n: u32) -> OmegaAutomaton {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let b = sigma.symbol("b").unwrap();
        OmegaAutomaton::build(
            &sigma,
            n as usize + 2,
            0,
            move |q, s| {
                if s == b {
                    (q + 1) % (n + 2)
                } else {
                    q
                }
            },
            Acceptance::inf([0]),
        )
    }

    #[test]
    fn hash_and_alias_dedup() {
        let mut store = Store::new(8);
        let first = store.ingest_automaton(tracker(1), "hoa");
        assert!(!first.known);
        let again = store.ingest_automaton(tracker(1), "hoa");
        assert!(again.known);
        assert_eq!(again.entry.hash, first.entry.hash);
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().dedup_hits, 1);
        assert_eq!(store.stats().ingests, 2);
    }

    #[test]
    fn equivalence_sweep_aliases_distinct_hashes() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        // Σω two ways: `True` acceptance vs `Inf` of the whole state set
        // — same language, different canonical acceptance, so the hashes
        // differ and only the sweep can merge them.
        let all_true = OmegaAutomaton::universal(&sigma);
        let all_inf = OmegaAutomaton::build(&sigma, 1, 0, |_, _| 0, Acceptance::inf([0]));
        assert_ne!(all_true.content_hash(), all_inf.content_hash());

        let mut store = Store::new(8);
        let first = store.ingest_automaton(all_true.clone(), "hoa");
        let second = store.ingest_automaton(all_inf.clone(), "hoa");
        assert!(second.known, "sweep must catch the equivalent automaton");
        assert_eq!(second.entry.hash, first.entry.hash);
        assert_eq!(store.len(), 1);
        // The alias resolves from now on.
        assert!(store.resolve(all_inf.content_hash()).is_some());
    }

    #[test]
    fn lru_evicts_oldest_and_aliases_follow() {
        let mut store = Store::new(2);
        let a = store.ingest_automaton(tracker(1), "hoa");
        let b = store.ingest_automaton(tracker(2), "hoa");
        // Touch `a` so `b` is the LRU victim.
        assert!(store.resolve(a.entry.hash).is_some());
        let c = store.ingest_automaton(tracker(3), "hoa");
        assert_eq!(c.evicted, vec![b.entry.hash]);
        assert!(store.resolve(b.entry.hash).is_none(), "b evicted");
        assert!(store.resolve(a.entry.hash).is_some());
        assert_eq!(store.stats().evictions, 1);
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn programs_are_hash_keyed() {
        let mut store = Store::new(4);
        let p = store.ingest_program(absint::peterson_abs());
        assert!(!p.known);
        assert_eq!(p.entry.kind(), "program");
        let again = store.ingest_program(absint::peterson_abs());
        assert!(again.known);
        assert_eq!(store.len(), 1);
        assert!(store.resolve(p.entry.hash).unwrap().program().is_some());
    }

    #[test]
    fn explicit_evict_and_readmission() {
        let mut store = Store::new(4);
        let a = store.ingest_automaton(tracker(1), "hoa");
        assert!(store.evict(a.entry.hash));
        assert!(!store.evict(a.entry.hash), "double evict is a no-op");
        assert!(store.resolve(a.entry.hash).is_none());
        let back = store.ingest_automaton(tracker(1), "hoa");
        assert!(!back.known, "re-ingest after eviction is cold");
        assert_eq!(back.entry.hash, a.entry.hash, "same content, same hash");
    }
}
