#![warn(missing_docs)]

//! Hierarchy-as-a-service: a persistent classification daemon.
//!
//! The paper's decision procedures — hierarchy classification,
//! inclusion, linting, invariant-first model checking — are all cheap
//! *after* their [`Analysis`] context has warmed up: SCC decompositions,
//! products and inclusion verdicts are memoized per automaton. A
//! one-shot CLI throws that context away between queries. This crate
//! keeps it alive: a daemon speaking **line-delimited JSON-RPC** over
//! stdin/stdout (or TCP, see [`listen`](Service::listen)) that ingests
//! artifacts once and answers every later query against the warm
//! context.
//!
//! Artifacts are **content-addressed** ([`Servable::content_hash`]):
//! automata hash in canonical quotient form, so α-equivalent automata,
//! formulas and regexes collide on purpose, and an ingest-time
//! equivalence sweep aliases even hash-distinct equal languages onto
//! one stored entry (see [`store`]). The store is a capacity-bounded
//! LRU.
//!
//! # Protocol
//!
//! One request per line, one response per line, both compact JSON:
//!
//! ```text
//! → {"id":1,"method":"ingest","params":{"kind":"formula","props":["p"],"source":"G F p"}}
//! ← {"id":1,"result":{"artifact":"86ac…","kind":"automaton","known":false,"states":2,"evicted":[]}}
//! → {"id":2,"method":"classify","params":{"artifact":"86ac…"}}
//! ← {"id":2,"result":{"artifact":"86ac…","class":"recurrence","borel":"Π₂",…}}
//! ```
//!
//! Errors follow JSON-RPC: `{"id":N,"error":{"code":C,"message":"…"}}`
//! with the standard codes (`-32700` parse, `-32600` invalid request,
//! `-32601` unknown method, `-32602` invalid params) plus the daemon's
//! own range: `-32001` unknown artifact, `-32002` bad artifact (HOA
//! parse, formula compile, unknown program), `-32003` artifact kind or
//! alphabet mismatch.
//!
//! Methods: `ingest`, `classify`, `lint`, `include`, `check`, `audit`,
//! `stats`, `evict`, and the batch forms `classify_batch` /
//! `lint_batch` that fan out over the worker pool ([`par`]).
//!
//! `audit` runs the whole-suite analysis of
//! [`lint::suite`](hierarchy_core::lint::suite) (`SUITE001`–`SUITE005`,
//! subsumption lattice, dominance DAG, hierarchy histogram) over a list
//! of already-ingested automaton artifacts. This is where the store
//! pays off: the O(n²) containment matrix runs on warm [`Analysis`]
//! contexts, so a re-audit after one more ingest mostly reads the
//! inclusion memo (watch `stats.inclusion_hits` in the response).
//!
//! `include` is verdict-only by default (the verdict rides the
//! `Analysis` inclusion memo, so repeats are cache hits); pass
//! `"witness":true` to also extract a counterexample lasso on failure.
//! The extractor's witness tours *every* state of the violating product
//! region — exact, but quadratic in the region and enormous on large
//! random automata — so a service must only pay it on request.

use hierarchy_core::automata::analysis::{Analysis, AnalysisStats};
use hierarchy_core::automata::canonical::ArtifactHash;
use hierarchy_core::automata::lasso::Lasso;
use hierarchy_core::automata::omega::OmegaAutomaton;
use hierarchy_core::automata::{hoa, inclusion, par};
use hierarchy_core::fts::absint::{self, DomainKind};
use hierarchy_core::fts::checker::check_with_invariants;
use hierarchy_core::fts::CheckError;
use hierarchy_core::lang::{operators, FinitaryProperty};
use hierarchy_core::lint::{
    audit_suite_ctx, lint_abstract_program, lint_automaton_ctx, report_to_json, AuditOptions,
};
use hierarchy_core::prelude::Alphabet;
use hierarchy_core::{HierarchyClass, Property};
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::sync::{Arc, Mutex};

pub mod json;
pub mod store;

use json::Json;
use store::{Entry, Ingested, Store};

/// The default batch-endpoint worker count: `HIERARCHY_THREADS` when
/// set, the machine's core count otherwise (see [`par::thread_count`]).
pub fn default_jobs() -> usize {
    par::thread_count()
}

/// JSON-RPC error codes used by the daemon.
pub mod code {
    /// The request line is not valid JSON.
    pub const PARSE: i64 = -32700;
    /// The request is valid JSON but not a valid request object.
    pub const INVALID_REQUEST: i64 = -32600;
    /// The method name is not recognized.
    pub const UNKNOWN_METHOD: i64 = -32601;
    /// The params are missing or ill-typed for the method.
    pub const INVALID_PARAMS: i64 = -32602;
    /// The named artifact is not in the store (never ingested, or
    /// evicted).
    pub const UNKNOWN_ARTIFACT: i64 = -32001;
    /// The submitted artifact is malformed (HOA parse error, formula
    /// compile error, unknown catalogue program, bad regex).
    pub const BAD_ARTIFACT: i64 = -32002;
    /// The artifact exists but has the wrong kind for the method, or
    /// two operands observe different alphabets.
    pub const KIND_MISMATCH: i64 = -32003;
}

/// A method-level failure: code plus human-readable message.
struct RpcError {
    code: i64,
    message: String,
}

impl RpcError {
    fn new(code: i64, message: impl Into<String>) -> RpcError {
        RpcError {
            code,
            message: message.into(),
        }
    }
}

type RpcResult = Result<Json, RpcError>;

/// The daemon: a content-addressed store of warm [`Analysis`] contexts
/// behind a JSON-RPC dispatcher. Thread-safe — wrap in [`Arc`] and call
/// [`handle_line`](Service::handle_line) from any number of
/// connections.
pub struct Service {
    store: Mutex<Store>,
    jobs: usize,
}

impl Service {
    /// A service holding at most `capacity` artifacts, fanning batch
    /// endpoints across `jobs` workers.
    pub fn new(capacity: usize, jobs: usize) -> Service {
        Service {
            store: Mutex::new(Store::new(capacity)),
            jobs: jobs.max(1),
        }
    }

    /// Handles one request line, returning the response line (without
    /// trailing newline). Never panics on malformed input.
    pub fn handle_line(&self, line: &str) -> String {
        let (id, outcome) = self.dispatch(line);
        let body = match outcome {
            Ok(result) => ("result", result),
            Err(e) => (
                "error",
                Json::obj([
                    ("code", Json::Int(e.code)),
                    ("message", Json::str(e.message)),
                ]),
            ),
        };
        Json::obj([("id", id), (body.0, body.1)]).to_string()
    }

    fn dispatch(&self, line: &str) -> (Json, RpcResult) {
        let request = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return (
                    Json::Null,
                    Err(RpcError::new(code::PARSE, format!("parse error: {e}"))),
                )
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        if !matches!(id, Json::Null | Json::Int(_) | Json::Str(_)) {
            return (
                Json::Null,
                Err(RpcError::new(
                    code::INVALID_REQUEST,
                    "id must be a number, string or absent",
                )),
            );
        }
        let method = match request.get("method").and_then(Json::as_str) {
            Some(m) => m,
            None => {
                return (
                    id,
                    Err(RpcError::new(code::INVALID_REQUEST, "missing method")),
                )
            }
        };
        let empty = Json::Obj(Vec::new());
        let params = request.get("params").unwrap_or(&empty);
        if !matches!(params, Json::Obj(_)) {
            return (
                id,
                Err(RpcError::new(
                    code::INVALID_PARAMS,
                    "params must be an object",
                )),
            );
        }
        let outcome = match method {
            "ingest" => self.rpc_ingest(params),
            "classify" => self.rpc_classify(params),
            "lint" => self.rpc_lint(params),
            "include" => self.rpc_include(params),
            "check" => self.rpc_check(params),
            "audit" => self.rpc_audit(params),
            "stats" => self.rpc_stats(),
            "evict" => self.rpc_evict(params),
            "classify_batch" => self.rpc_batch(params, classify_entry),
            "lint_batch" => self.rpc_batch(params, lint_entry),
            other => Err(RpcError::new(
                code::UNKNOWN_METHOD,
                format!("unknown method {other:?}"),
            )),
        };
        (id, outcome)
    }

    // ---- ingest -----------------------------------------------------

    fn rpc_ingest(&self, params: &Json) -> RpcResult {
        let kind = require_str(params, "kind")?;
        match kind {
            "automaton" => {
                let src = require_str(params, "hoa")?;
                let aut = hoa::hoa_to_omega(src)
                    .map_err(|e| RpcError::new(code::BAD_ARTIFACT, e.to_string()))?;
                Ok(self.ingest_automaton(aut, "hoa"))
            }
            "formula" => {
                let source = require_str(params, "source")?;
                let sigma = params_alphabet(params)?;
                let prop = Property::parse(&sigma, source)
                    .map_err(|e| RpcError::new(code::BAD_ARTIFACT, e.to_string()))?;
                Ok(self.ingest_automaton(prop.automaton().clone(), "formula"))
            }
            "regex" => {
                let pattern = require_str(params, "pattern")?;
                let sigma = params_alphabet(params)?;
                let phi = FinitaryProperty::parse(&sigma, pattern)
                    .map_err(|e| RpcError::new(code::BAD_ARTIFACT, e.to_string()))?;
                let operator = optional_str(params, "operator")?.unwrap_or("A");
                let aut = match operator {
                    "A" => operators::a(&phi),
                    "E" => operators::e(&phi),
                    "R" => operators::r(&phi),
                    "P" => operators::p(&phi),
                    other => {
                        return Err(RpcError::new(
                            code::INVALID_PARAMS,
                            format!("operator must be A, E, R or P, got {other:?}"),
                        ))
                    }
                };
                Ok(self.ingest_automaton(aut, "regex"))
            }
            "program" => {
                let name = require_str(params, "name")?;
                let program = absint::catalogue()
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, p)| p)
                    .ok_or_else(|| {
                        RpcError::new(
                            code::BAD_ARTIFACT,
                            format!("unknown catalogue program {name:?}"),
                        )
                    })?;
                let ingested = self.store.lock().unwrap().ingest_program(program);
                Ok(ingest_result(&ingested, Json::str(name)))
            }
            other => Err(RpcError::new(
                code::INVALID_PARAMS,
                format!("kind must be automaton, formula, regex or program, got {other:?}"),
            )),
        }
    }

    fn ingest_automaton(&self, aut: OmegaAutomaton, origin: &'static str) -> Json {
        let states = aut.num_states();
        let ingested = self.store.lock().unwrap().ingest_automaton(aut, origin);
        ingest_result(&ingested, Json::Int(states as i64))
    }

    // ---- single-artifact queries ------------------------------------

    fn resolve(&self, params: &Json, key: &'static str) -> Result<Arc<Entry>, RpcError> {
        let hex = require_str(params, key)?;
        let hash = ArtifactHash::parse(hex).ok_or_else(|| {
            RpcError::new(
                code::INVALID_PARAMS,
                format!("{key} must be a 32-digit hex hash"),
            )
        })?;
        self.store
            .lock()
            .unwrap()
            .resolve(hash)
            .ok_or_else(|| RpcError::new(code::UNKNOWN_ARTIFACT, format!("unknown artifact {hex}")))
    }

    fn rpc_classify(&self, params: &Json) -> RpcResult {
        let entry = self.resolve(params, "artifact")?;
        let warm = Store::record_query(&entry) > 0;
        classify_entry(&entry, warm)
    }

    fn rpc_lint(&self, params: &Json) -> RpcResult {
        let entry = self.resolve(params, "artifact")?;
        let warm = Store::record_query(&entry) > 0;
        lint_entry(&entry, warm)
    }

    fn rpc_include(&self, params: &Json) -> RpcResult {
        let lhs = self.resolve(params, "lhs")?;
        let rhs = self.resolve(params, "rhs")?;
        Store::record_query(&lhs);
        Store::record_query(&rhs);
        let a = require_automaton(&lhs)?;
        let b = require_automaton(&rhs)?;
        if a.automaton().alphabet() != b.automaton().alphabet() {
            return Err(RpcError::new(
                code::KIND_MISMATCH,
                "lhs and rhs observe different alphabets",
            ));
        }
        let witness = params
            .get("witness")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let included = a.is_subset_of(b.automaton());
        let equivalent = included && b.is_subset_of(a.automaton());
        // The every-region-state witness tour is quadratic in the
        // violating product region, so it is opt-in: the default
        // response is the memoized verdict alone.
        let counterexample = if included || !witness {
            Json::Null
        } else {
            match inclusion::inclusion_counterexample(a.automaton(), b.automaton()) {
                Some(lasso) => lasso_json(a.automaton(), &lasso),
                None => Json::Null,
            }
        };
        Ok(Json::obj([
            ("lhs", Json::str(lhs.hash.to_string())),
            ("rhs", Json::str(rhs.hash.to_string())),
            ("included", Json::Bool(included)),
            ("equivalent", Json::Bool(equivalent)),
            ("counterexample", counterexample),
        ]))
    }

    fn rpc_check(&self, params: &Json) -> RpcResult {
        let prog_entry = self.resolve(params, "program")?;
        let prop_entry = self.resolve(params, "property")?;
        Store::record_query(&prog_entry);
        Store::record_query(&prop_entry);
        let program = prog_entry.program().ok_or_else(|| {
            RpcError::new(code::KIND_MISMATCH, "program must name a program artifact")
        })?;
        let property = require_automaton(&prop_entry)?;
        let domain = match optional_str(params, "domain")?.unwrap_or("relational") {
            "constants" => DomainKind::Constants,
            "intervals" => DomainKind::Intervals,
            "value-sets" => DomainKind::ValueSets,
            "relational" => DomainKind::Relational,
            other => {
                return Err(RpcError::new(
                    code::INVALID_PARAMS,
                    format!(
                        "domain must be constants, intervals, value-sets or relational, \
                         got {other:?}"
                    ),
                ))
            }
        };
        let sigma = property.automaton().alphabet().clone();
        let (verdict, stats) = check_with_invariants(program, &sigma, property.automaton(), domain)
            .map_err(|e| {
                let code = match e {
                    CheckError::AlphabetMismatch => code::KIND_MISMATCH,
                    _ => code::BAD_ARTIFACT,
                };
                RpcError::new(code, e.to_string())
            })?;
        let (holds, counterexample) = match &verdict {
            hierarchy_core::fts::checker::Verdict::Holds => (true, Json::Null),
            hierarchy_core::fts::checker::Verdict::Violated(cex) => (
                false,
                Json::obj([
                    ("stem", int_array(&cex.stem)),
                    ("cycle", int_array(&cex.cycle)),
                ]),
            ),
        };
        Ok(Json::obj([
            (
                "verdict",
                Json::str(if holds { "holds" } else { "violated" }),
            ),
            ("counterexample", counterexample),
            (
                "stats",
                Json::obj([
                    ("product_states", Json::Int(stats.product_states as i64)),
                    (
                        "pruned_product_states",
                        Json::Int(stats.pruned_product_states as i64),
                    ),
                    ("abstract_pairs", Json::Int(stats.abstract_pairs as i64)),
                    ("discharged", Json::Bool(stats.discharged)),
                    (
                        "certificate_ok",
                        match stats.certificate_ok {
                            Some(b) => Json::Bool(b),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
        ]))
    }

    // ---- suite audit ------------------------------------------------

    /// `audit`: the whole-suite static analysis of `lint::suite` over
    /// ingested automaton artifacts. Params: `artifacts` (array of
    /// hashes, the suite in order) and optionally `cap` (the conjunction
    /// state cap behind `SUITE001`/`SUITE004`; `0` disables the deep
    /// checks). Member names in the report are the artifact hashes.
    fn rpc_audit(&self, params: &Json) -> RpcResult {
        let hexes = params
            .get("artifacts")
            .and_then(Json::as_arr)
            .ok_or_else(|| {
                RpcError::new(code::INVALID_PARAMS, "artifacts must be an array of hashes")
            })?;
        if hexes.is_empty() {
            return Err(RpcError::new(
                code::INVALID_PARAMS,
                "audit needs at least one artifact",
            ));
        }
        let mut opts = AuditOptions {
            jobs: self.jobs,
            ..AuditOptions::default()
        };
        match params.get("cap") {
            None | Some(Json::Null) => {}
            Some(v) => {
                let cap = v.as_int().filter(|&c| c >= 0).ok_or_else(|| {
                    RpcError::new(code::INVALID_PARAMS, "cap must be a non-negative integer")
                })?;
                opts.conjunction_cap = cap as usize;
            }
        }
        let mut entries = Vec::with_capacity(hexes.len());
        {
            let mut store = self.store.lock().unwrap();
            for h in hexes {
                let hex = h.as_str().ok_or_else(|| {
                    RpcError::new(code::INVALID_PARAMS, "artifacts must be an array of hashes")
                })?;
                let hash = ArtifactHash::parse(hex).ok_or_else(|| {
                    RpcError::new(
                        code::INVALID_PARAMS,
                        format!("{hex:?} is not a 32-digit hex hash"),
                    )
                })?;
                let entry = store.resolve(hash).ok_or_else(|| {
                    RpcError::new(code::UNKNOWN_ARTIFACT, format!("unknown artifact {hex}"))
                })?;
                entries.push(entry);
            }
        }
        let warm: Vec<bool> = entries.iter().map(|e| Store::record_query(e) > 0).collect();
        let names: Vec<String> = entries.iter().map(|e| e.hash.to_string()).collect();
        let mut ctxs = Vec::with_capacity(entries.len());
        for entry in &entries {
            ctxs.push(require_automaton(entry)?);
        }
        let items: Vec<(&str, &Analysis)> = names.iter().map(String::as_str).zip(ctxs).collect();
        // The only audit-level failure is an alphabet mismatch between
        // two members — the daemon's operand-mismatch code.
        let audit = audit_suite_ctx(&items, &opts)
            .map_err(|e| RpcError::new(code::KIND_MISMATCH, e.to_string()))?;
        let members: Vec<Json> = (0..audit.names.len())
            .map(|i| {
                Json::obj([
                    ("artifact", Json::str(audit.names[i].clone())),
                    ("class", Json::str(audit.classes[i])),
                    ("representative", Json::Int(audit.representative[i] as i64)),
                    ("warm", Json::Bool(warm[i])),
                    (
                        "diagnostics",
                        Json::Raw(report_to_json(&audit.member_diagnostics[i])),
                    ),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("members", Json::Arr(members)),
            (
                "dominance",
                Json::Arr(
                    audit
                        .dominance
                        .iter()
                        .map(|&(a, b)| Json::Arr(vec![Json::Int(a as i64), Json::Int(b as i64)]))
                        .collect(),
                ),
            ),
            (
                "histogram",
                Json::obj(
                    audit
                        .histogram
                        .iter()
                        .map(|&(class, count)| (class, Json::Int(count as i64))),
                ),
            ),
            (
                "suite_diagnostics",
                Json::Raw(report_to_json(&audit.suite_diagnostics)),
            ),
            ("clean", Json::Bool(audit.is_clean())),
            (
                "prefilter",
                Json::obj([
                    ("pairs", Json::Int(audit.prefilter.pairs as i64)),
                    (
                        "hash_decided",
                        Json::Int(audit.prefilter.hash_decided as i64),
                    ),
                    (
                        "oracle_calls",
                        Json::Int(audit.prefilter.oracle_calls as i64),
                    ),
                ]),
            ),
            (
                "deep_checks_skipped",
                Json::Int(audit.deep_checks_skipped as i64),
            ),
            ("stats", stats_json(&audit.stats)),
        ]))
    }

    // ---- store management -------------------------------------------

    fn rpc_stats(&self) -> RpcResult {
        let store = self.store.lock().unwrap();
        let s = store.stats();
        let artifacts: Vec<Json> = store
            .list()
            .into_iter()
            .map(|e| {
                Json::obj([
                    ("artifact", Json::str(e.hash.to_string())),
                    ("kind", Json::str(e.kind())),
                    ("origin", Json::str(e.origin)),
                    (
                        "queries",
                        Json::Int(e.queries.load(std::sync::atomic::Ordering::Relaxed) as i64),
                    ),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("capacity", Json::Int(store.capacity() as i64)),
            ("entries", Json::Int(store.len() as i64)),
            ("ingests", Json::Int(s.ingests as i64)),
            ("dedup_hits", Json::Int(s.dedup_hits as i64)),
            ("hits", Json::Int(s.hits as i64)),
            ("misses", Json::Int(s.misses as i64)),
            ("evictions", Json::Int(s.evictions as i64)),
            ("artifacts", Json::Arr(artifacts)),
        ]))
    }

    fn rpc_evict(&self, params: &Json) -> RpcResult {
        let hex = require_str(params, "artifact")?;
        let hash = ArtifactHash::parse(hex).ok_or_else(|| {
            RpcError::new(code::INVALID_PARAMS, "artifact must be a 32-digit hex hash")
        })?;
        let evicted = self.store.lock().unwrap().evict(hash);
        Ok(Json::obj([("evicted", Json::Bool(evicted))]))
    }

    // ---- batches ----------------------------------------------------

    fn rpc_batch(&self, params: &Json, f: impl Fn(&Entry, bool) -> RpcResult + Sync) -> RpcResult {
        let hexes = params
            .get("artifacts")
            .and_then(Json::as_arr)
            .ok_or_else(|| {
                RpcError::new(code::INVALID_PARAMS, "artifacts must be an array of hashes")
            })?;
        let mut entries = Vec::with_capacity(hexes.len());
        {
            let mut store = self.store.lock().unwrap();
            for h in hexes {
                let hex = h.as_str().ok_or_else(|| {
                    RpcError::new(code::INVALID_PARAMS, "artifacts must be an array of hashes")
                })?;
                let hash = ArtifactHash::parse(hex).ok_or_else(|| {
                    RpcError::new(
                        code::INVALID_PARAMS,
                        format!("{hex:?} is not a 32-digit hex hash"),
                    )
                })?;
                let entry = store.resolve(hash).ok_or_else(|| {
                    RpcError::new(code::UNKNOWN_ARTIFACT, format!("unknown artifact {hex}"))
                })?;
                entries.push(entry);
            }
        }
        // Fan the per-artifact work across the pool; each entry's warm
        // Analysis memoizes internally, so workers share one cache.
        let results = par::map_with(self.jobs, &entries, |entry| {
            let warm = Store::record_query(entry) > 0;
            f(entry, warm)
        });
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            out.push(r?);
        }
        Ok(Json::obj([("results", Json::Arr(out))]))
    }

    // ---- transports -------------------------------------------------

    /// Serves requests line-by-line from `reader`, writing one response
    /// line per request to `writer` (flushed after each response).
    /// Returns when the reader reaches end-of-input. Blank lines are
    /// skipped.
    pub fn serve(&self, reader: impl BufRead, writer: &mut impl Write) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle_line(&line);
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        Ok(())
    }

    /// Accept loop: serves every connection on its own thread, all
    /// sharing this service's store. Runs until the listener errors.
    pub fn listen(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        loop {
            let (stream, _) = listener.accept()?;
            let service = Arc::clone(self);
            std::thread::spawn(move || {
                let reader = std::io::BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                let mut writer = stream;
                let _ = service.serve(reader, &mut writer);
            });
        }
    }
}

// ---- shared response builders ---------------------------------------

fn ingest_result(ingested: &Ingested, detail: Json) -> Json {
    let detail_key = match ingested.entry.kind() {
        "program" => "name",
        _ => "states",
    };
    Json::obj([
        ("artifact", Json::str(ingested.hash.to_string())),
        ("kind", Json::str(ingested.entry.kind())),
        ("known", Json::Bool(ingested.known)),
        (detail_key, detail),
        (
            "evicted",
            Json::Arr(
                ingested
                    .evicted
                    .iter()
                    .map(|h| Json::str(h.to_string()))
                    .collect(),
            ),
        ),
    ])
}

fn require_automaton(entry: &Entry) -> Result<&Analysis, RpcError> {
    entry.analysis().ok_or_else(|| {
        RpcError::new(
            code::KIND_MISMATCH,
            format!(
                "artifact {} is a {}, not an automaton",
                entry.hash,
                entry.kind()
            ),
        )
    })
}

fn classify_entry(entry: &Entry, warm: bool) -> RpcResult {
    let ctx = require_automaton(entry)?;
    let before = ctx.stats_total();
    let c = ctx.classification().clone();
    let delta = ctx.stats_total().delta_since(before);
    let class = HierarchyClass::from_classification(&c);
    Ok(Json::obj([
        ("artifact", Json::str(entry.hash.to_string())),
        ("class", Json::str(class.to_string())),
        ("strictest", Json::str(c.strictest_class_name())),
        ("borel", Json::str(c.borel_name())),
        ("safety", Json::Bool(c.is_safety)),
        ("guarantee", Json::Bool(c.is_guarantee)),
        ("obligation", Json::Bool(c.is_obligation)),
        ("recurrence", Json::Bool(c.is_recurrence)),
        ("persistence", Json::Bool(c.is_persistence)),
        ("simple_reactivity", Json::Bool(c.is_simple_reactivity)),
        (
            "obligation_index",
            match c.obligation_index {
                Some(k) => Json::Int(k as i64),
                None => Json::Null,
            },
        ),
        ("reactivity_index", Json::Int(c.reactivity_index as i64)),
        ("warm", Json::Bool(warm)),
        ("stats", stats_json(&delta)),
    ]))
}

fn lint_entry(entry: &Entry, warm: bool) -> RpcResult {
    let diagnostics = match (entry.analysis(), entry.program()) {
        (Some(ctx), _) => lint_automaton_ctx(ctx),
        (_, Some(program)) => lint_abstract_program(program)
            .map_err(|e| RpcError::new(code::BAD_ARTIFACT, e.to_string()))?,
        _ => unreachable!("entry is always an automaton or a program"),
    };
    Ok(Json::obj([
        ("artifact", Json::str(entry.hash.to_string())),
        ("kind", Json::str(entry.kind())),
        ("count", Json::Int(diagnostics.len() as i64)),
        ("diagnostics", Json::Raw(report_to_json(&diagnostics))),
        ("warm", Json::Bool(warm)),
    ]))
}

fn stats_json(s: &AnalysisStats) -> Json {
    Json::obj([
        ("scc_passes", Json::Int(s.scc_passes as i64)),
        ("scc_state_visits", Json::Int(s.scc_state_visits as i64)),
        ("scc_hits", Json::Int(s.scc_hits as i64)),
        ("products_built", Json::Int(s.products_built as i64)),
        ("product_hits", Json::Int(s.product_hits as i64)),
        ("inclusion_checks", Json::Int(s.inclusion_checks as i64)),
        ("inclusion_hits", Json::Int(s.inclusion_hits as i64)),
    ])
}

fn lasso_json(aut: &OmegaAutomaton, lasso: &Lasso) -> Json {
    let names = |syms: &[hierarchy_core::prelude::Symbol]| {
        Json::Arr(
            syms.iter()
                .map(|&s| Json::str(aut.alphabet().name(s)))
                .collect(),
        )
    };
    Json::obj([
        ("stem", names(lasso.spoke())),
        ("cycle", names(lasso.cycle())),
    ])
}

fn int_array(xs: &[usize]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Int(x as i64)).collect())
}

// ---- param helpers ---------------------------------------------------

fn require_str<'p>(params: &'p Json, key: &'static str) -> Result<&'p str, RpcError> {
    params.get(key).and_then(Json::as_str).ok_or_else(|| {
        RpcError::new(
            code::INVALID_PARAMS,
            format!("missing string param {key:?}"),
        )
    })
}

fn optional_str<'p>(params: &'p Json, key: &'static str) -> Result<Option<&'p str>, RpcError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_str().map(Some).ok_or_else(|| {
            RpcError::new(
                code::INVALID_PARAMS,
                format!("param {key:?} must be a string"),
            )
        }),
    }
}

/// Reads the alphabet from `props` (proposition names, ≤ 6) or
/// `letters` (symbol names); exactly one must be present.
fn params_alphabet(params: &Json) -> Result<Alphabet, RpcError> {
    let names = |v: &Json| -> Result<Vec<String>, RpcError> {
        v.as_arr()
            .map(|xs| {
                xs.iter()
                    .map(|x| x.as_str().map(str::to_string))
                    .collect::<Option<Vec<_>>>()
            })
            .and_then(|o| o)
            .ok_or_else(|| {
                RpcError::new(code::INVALID_PARAMS, "alphabet must be an array of strings")
            })
    };
    match (params.get("props"), params.get("letters")) {
        (Some(p), None) => Alphabet::of_propositions(names(p)?)
            .map_err(|e| RpcError::new(code::INVALID_PARAMS, e.to_string())),
        (None, Some(l)) => {
            Alphabet::new(names(l)?).map_err(|e| RpcError::new(code::INVALID_PARAMS, e.to_string()))
        }
        _ => Err(RpcError::new(
            code::INVALID_PARAMS,
            "exactly one of props / letters is required",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ingest_formula(svc: &Service, source: &str) -> String {
        let req = format!(
            "{{\"id\":1,\"method\":\"ingest\",\"params\":{{\"kind\":\"formula\",\"props\":[\"p\",\"q\"],\"source\":{}}}}}",
            Json::str(source)
        );
        let resp = Json::parse(&svc.handle_line(&req)).unwrap();
        resp.get("result")
            .and_then(|r| r.get("artifact"))
            .and_then(Json::as_str)
            .expect("ingest must succeed")
            .to_string()
    }

    #[test]
    fn ingest_then_classify_round_trip() {
        let svc = Service::new(8, 1);
        let hash = ingest_formula(&svc, "G F p");
        let req =
            format!("{{\"id\":2,\"method\":\"classify\",\"params\":{{\"artifact\":\"{hash}\"}}}}");
        let resp = Json::parse(&svc.handle_line(&req)).unwrap();
        let result = resp.get("result").expect("classify succeeds");
        assert_eq!(
            result.get("class").and_then(Json::as_str),
            Some("recurrence")
        );
        assert_eq!(result.get("borel").and_then(Json::as_str), Some("Π₂"));
        assert_eq!(result.get("warm").and_then(Json::as_bool), Some(false));
        // Second classify is warm and costs no SCC passes.
        let resp2 = Json::parse(&svc.handle_line(&req)).unwrap();
        let result2 = resp2.get("result").unwrap();
        assert_eq!(result2.get("warm").and_then(Json::as_bool), Some(true));
        assert_eq!(
            result2
                .get("stats")
                .and_then(|s| s.get("scc_passes"))
                .and_then(Json::as_int),
            Some(0)
        );
    }

    #[test]
    fn alpha_equivalent_formulas_dedup() {
        let svc = Service::new(8, 1);
        let h1 = ingest_formula(&svc, "G (p -> F q)");
        let h2 = ingest_formula(&svc, "G (F q | !p)");
        assert_eq!(h1, h2, "α-equivalent formulas share one artifact");
        let resp = Json::parse(&svc.handle_line("{\"id\":3,\"method\":\"stats\"}")).unwrap();
        let result = resp.get("result").unwrap();
        assert_eq!(result.get("entries").and_then(Json::as_int), Some(1));
        assert_eq!(result.get("dedup_hits").and_then(Json::as_int), Some(1));
    }

    #[test]
    fn error_codes() {
        let svc = Service::new(8, 1);
        let cases = [
            ("not json", code::PARSE),
            ("{\"id\":1}", code::INVALID_REQUEST),
            ("{\"id\":1,\"method\":\"nope\"}", code::UNKNOWN_METHOD),
            ("{\"id\":1,\"method\":\"classify\"}", code::INVALID_PARAMS),
            (
                "{\"id\":1,\"method\":\"classify\",\"params\":{\"artifact\":\"00000000000000000000000000000000\"}}",
                code::UNKNOWN_ARTIFACT,
            ),
            (
                "{\"id\":1,\"method\":\"ingest\",\"params\":{\"kind\":\"automaton\",\"hoa\":\"garbage\"}}",
                code::BAD_ARTIFACT,
            ),
        ];
        for (line, want) in cases {
            let resp = Json::parse(&svc.handle_line(line)).unwrap();
            let got = resp
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_int);
            assert_eq!(got, Some(want), "for request {line:?}");
        }
    }

    #[test]
    fn include_and_kind_mismatch() {
        let svc = Service::new(8, 1);
        let gfp = ingest_formula(&svc, "G F p");
        let gp = ingest_formula(&svc, "G p");
        let req = format!(
            "{{\"id\":1,\"method\":\"include\",\"params\":{{\"lhs\":\"{gp}\",\"rhs\":\"{gfp}\"}}}}"
        );
        let resp = Json::parse(&svc.handle_line(&req)).unwrap();
        let result = resp.get("result").unwrap();
        assert_eq!(result.get("included").and_then(Json::as_bool), Some(true));
        assert_eq!(
            result.get("equivalent").and_then(Json::as_bool),
            Some(false)
        );
        // Reverse direction fails; the counterexample lasso only comes
        // with "witness":true (the tour is opt-in).
        let req = format!(
            "{{\"id\":2,\"method\":\"include\",\"params\":{{\"lhs\":\"{gfp}\",\"rhs\":\"{gp}\"}}}}"
        );
        let resp = Json::parse(&svc.handle_line(&req)).unwrap();
        let result = resp.get("result").unwrap();
        assert_eq!(result.get("included").and_then(Json::as_bool), Some(false));
        assert!(matches!(result.get("counterexample"), Some(Json::Null)));
        let req = format!(
            "{{\"id\":2,\"method\":\"include\",\"params\":{{\"lhs\":\"{gfp}\",\"rhs\":\"{gp}\",\"witness\":true}}}}"
        );
        let resp = Json::parse(&svc.handle_line(&req)).unwrap();
        let result = resp.get("result").unwrap();
        assert!(result
            .get("counterexample")
            .map(|c| !matches!(c, Json::Null))
            .unwrap_or(false));
        // Program vs automaton in include → kind mismatch.
        let resp = Json::parse(
            &svc.handle_line(
                "{\"id\":3,\"method\":\"ingest\",\"params\":{\"kind\":\"program\",\"name\":\"peterson\"}}",
            ),
        )
        .unwrap();
        let prog = resp
            .get("result")
            .and_then(|r| r.get("artifact"))
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let req = format!(
            "{{\"id\":4,\"method\":\"include\",\"params\":{{\"lhs\":\"{prog}\",\"rhs\":\"{gfp}\"}}}}"
        );
        let resp = Json::parse(&svc.handle_line(&req)).unwrap();
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_int),
            Some(code::KIND_MISMATCH)
        );
    }

    #[test]
    fn check_discharges_mutual_exclusion() {
        let svc = Service::new(8, 1);
        let resp = Json::parse(
            &svc.handle_line(
                "{\"id\":1,\"method\":\"ingest\",\"params\":{\"kind\":\"program\",\"name\":\"mux-sem\"}}",
            ),
        )
        .unwrap();
        let prog = resp
            .get("result")
            .and_then(|r| r.get("artifact"))
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let resp = Json::parse(&svc.handle_line(
            "{\"id\":2,\"method\":\"ingest\",\"params\":{\"kind\":\"formula\",\"props\":[\"c1\",\"c2\",\"t1\",\"t2\"],\"source\":\"G !(c1 & c2)\"}}",
        ))
        .unwrap();
        let prop = resp
            .get("result")
            .and_then(|r| r.get("artifact"))
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let req = format!(
            "{{\"id\":3,\"method\":\"check\",\"params\":{{\"program\":\"{prog}\",\"property\":\"{prop}\",\"domain\":\"value-sets\"}}}}"
        );
        let resp = Json::parse(&svc.handle_line(&req)).unwrap();
        let result = resp.get("result").expect("check succeeds");
        assert_eq!(result.get("verdict").and_then(Json::as_str), Some("holds"));
        let stats = result.get("stats").unwrap();
        assert_eq!(stats.get("discharged").and_then(Json::as_bool), Some(true));
        assert_eq!(stats.get("product_states").and_then(Json::as_int), Some(0));
    }

    #[test]
    fn batch_matches_singles() {
        let svc = Service::new(8, 2);
        let h1 = ingest_formula(&svc, "G p");
        let h2 = ingest_formula(&svc, "F p");
        let req = format!(
            "{{\"id\":1,\"method\":\"classify_batch\",\"params\":{{\"artifacts\":[\"{h1}\",\"{h2}\"]}}}}"
        );
        let resp = Json::parse(&svc.handle_line(&req)).unwrap();
        let results = resp
            .get("result")
            .and_then(|r| r.get("results"))
            .and_then(Json::as_arr)
            .expect("batch succeeds")
            .to_vec();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("class").and_then(Json::as_str),
            Some("safety")
        );
        assert_eq!(
            results[1].get("class").and_then(Json::as_str),
            Some("guarantee")
        );
    }

    #[test]
    fn audit_reports_suite_findings_over_warm_entries() {
        let svc = Service::new(8, 2);
        let ga = ingest_formula(&svc, "G p");
        let fa = ingest_formula(&svc, "F p");
        let req = format!(
            "{{\"id\":1,\"method\":\"audit\",\"params\":{{\"artifacts\":[\"{ga}\",\"{fa}\"]}}}}"
        );
        let resp = Json::parse(&svc.handle_line(&req)).unwrap();
        let result = resp.get("result").expect("audit succeeds");
        let members = result
            .get("members")
            .and_then(Json::as_arr)
            .expect("members array")
            .to_vec();
        assert_eq!(members.len(), 2);
        assert_eq!(
            members[0].get("class").and_then(Json::as_str),
            Some("safety")
        );
        assert_eq!(
            members[1].get("class").and_then(Json::as_str),
            Some("guarantee")
        );
        // G p ⊊ F p: one dominance edge, F p redundant (SUITE001).
        assert_eq!(
            result
                .get("dominance")
                .and_then(Json::as_arr)
                .map(<[_]>::len),
            Some(1)
        );
        let fa_diags = members[1].get("diagnostics").map(Json::to_string).unwrap();
        assert!(fa_diags.contains("SUITE001"), "got {fa_diags}");
        assert_eq!(result.get("clean").and_then(Json::as_bool), Some(false));
        // Second audit runs on warm entries and reads the inclusion memo.
        let resp = Json::parse(&svc.handle_line(&req)).unwrap();
        let result = resp.get("result").unwrap();
        let members = result.get("members").and_then(Json::as_arr).unwrap();
        assert!(members
            .iter()
            .all(|m| m.get("warm").and_then(Json::as_bool) == Some(true)));
        let hits = result
            .get("stats")
            .and_then(|s| s.get("inclusion_hits"))
            .and_then(Json::as_int)
            .unwrap();
        assert!(hits > 0, "warm re-audit must hit the inclusion memo");
    }

    #[test]
    fn audit_error_shapes() {
        let svc = Service::new(8, 1);
        let gp = ingest_formula(&svc, "G p");
        // Mixed alphabets → the operand-mismatch code.
        let other = Json::parse(&svc.handle_line(
            "{\"id\":1,\"method\":\"ingest\",\"params\":{\"kind\":\"formula\",\"props\":[\"r\"],\"source\":\"G r\"}}",
        ))
        .unwrap()
        .get("result")
        .and_then(|r| r.get("artifact"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
        let req = format!(
            "{{\"id\":2,\"method\":\"audit\",\"params\":{{\"artifacts\":[\"{gp}\",\"{other}\"]}}}}"
        );
        let resp = Json::parse(&svc.handle_line(&req)).unwrap();
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_int),
            Some(code::KIND_MISMATCH)
        );
        // A program artifact in the suite → the same kind-mismatch code.
        let prog = Json::parse(&svc.handle_line(
            "{\"id\":3,\"method\":\"ingest\",\"params\":{\"kind\":\"program\",\"name\":\"peterson\"}}",
        ))
        .unwrap()
        .get("result")
        .and_then(|r| r.get("artifact"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
        let req = format!(
            "{{\"id\":4,\"method\":\"audit\",\"params\":{{\"artifacts\":[\"{gp}\",\"{prog}\"]}}}}"
        );
        let resp = Json::parse(&svc.handle_line(&req)).unwrap();
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_int),
            Some(code::KIND_MISMATCH)
        );
        // Empty suite and bad cap → invalid params.
        for req in [
            "{\"id\":5,\"method\":\"audit\",\"params\":{\"artifacts\":[]}}".to_string(),
            format!(
                "{{\"id\":6,\"method\":\"audit\",\"params\":{{\"artifacts\":[\"{gp}\"],\"cap\":-1}}}}"
            ),
        ] {
            let resp = Json::parse(&svc.handle_line(&req)).unwrap();
            assert_eq!(
                resp.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_int),
                Some(code::INVALID_PARAMS),
                "for request {req}"
            );
        }
    }

    #[test]
    fn serve_loop_and_eof() {
        let svc = Service::new(8, 1);
        let input = b"\n{\"id\":7,\"method\":\"stats\"}\n".to_vec();
        let mut out = Vec::new();
        svc.serve(&input[..], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "blank line skipped, one response");
        let resp = Json::parse(lines[0]).unwrap();
        assert_eq!(resp.get("id").and_then(Json::as_int), Some(7));
    }
}
