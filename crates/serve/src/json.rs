//! A minimal JSON value type with a parser and a compact serializer.
//!
//! The daemon speaks line-delimited JSON-RPC with **byte-exact**
//! response goldens in its protocol suite, so serialization must be
//! fully deterministic: object keys keep insertion order, numbers that
//! are mathematically integral print without a decimal point, and no
//! whitespace is emitted. The parser accepts standard JSON (RFC 8259)
//! minus two conveniences nothing zero-dependency needs: `\uXXXX`
//! escapes for characters outside the two-character escape set are
//! supported, but surrogate pairs are combined only when well-formed
//! (lone surrogates are rejected).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that is an exact integer.
    Int(i64),
    /// Any other finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order (serialization is
    /// deterministic, and duplicate keys are rejected by the parser).
    Obj(Vec<(String, Json)>),
    /// A pre-rendered JSON fragment spliced verbatim into the output
    /// (used to embed `lint::report_to_json` without re-parsing).
    Raw(String),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key`, for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, when this is an integral number.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Parses a JSON document (the whole string must be one value).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact serialization: no whitespace, insertion-ordered keys.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_into(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(x) => {
                // Integral floats print as integers so output never
                // depends on how a count was computed.
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
            Json::Raw(s) => out.push_str(s),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(xs));
                }
                loop {
                    xs.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(xs));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs: Vec<(String, Json)> = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    if pairs.iter().any(|(k, _)| *k == key) {
                        return Err(format!("duplicate key {key:?}"));
                    }
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected byte {:?} at {}", c as char, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Decode the next UTF-8 scalar from the remaining bytes.
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| "invalid UTF-8 in string".to_string())?;
            let mut chars = rest.chars();
            let c = chars.next().ok_or("unterminated string")?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let e = chars.next().ok_or("dangling escape")?;
                    self.pos += e.len_utf8();
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let hi = self.hex4()?;
                            let scalar = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if !self.literal("\\u") {
                                    return Err("lone high surrogate".to_string());
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                c if (c as u32) < 0x20 => {
                    return Err("unescaped control character in string".to_string())
                }
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape {s:?}"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        let x: f64 = text.parse().map_err(|_| format!("bad number {text:?}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number {text:?}"));
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compactly() {
        for src in [
            "null",
            "true",
            "[1,2,3]",
            "{\"a\":1,\"b\":[false,\"x\"]}",
            "{\"nested\":{\"k\":\"v\"},\"n\":-7}",
            "\"tab\\tnewline\\n\"",
        ] {
            let v = Json::parse(src).unwrap();
            assert_eq!(v.to_string(), src, "compact round trip of {src}");
        }
    }

    #[test]
    fn parses_with_whitespace_and_preserves_key_order() {
        let v = Json::parse("  { \"z\" : 1 , \"a\" : 2 }  ").unwrap();
        assert_eq!(v.to_string(), "{\"z\":1,\"a\":2}");
        assert_eq!(v.get("z"), Some(&Json::Int(1)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn numbers_split_int_and_float() {
        assert_eq!(Json::parse("42"), Ok(Json::Int(42)));
        assert_eq!(Json::parse("-3"), Ok(Json::Int(-3)));
        assert!(matches!(Json::parse("1.5"), Ok(Json::Num(_))));
        assert!(matches!(Json::parse("1e3"), Ok(Json::Num(_))));
        assert_eq!(Json::parse("1.5").unwrap().to_string(), "1.5");
        assert_eq!(Json::parse("2e2").unwrap().to_string(), "200");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Json::parse("\"\\u00e9\\uD83D\\uDE00\"").unwrap(),
            Json::Str("é😀".to_string())
        );
        assert!(Json::parse("\"\\uD83D\"").is_err(), "lone surrogate");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "truex",
            "\"unterminated",
            "[1] 2",
            "{'a':1}",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn raw_splices_verbatim() {
        let v = Json::obj([("diags", Json::Raw("[{\"x\": 1}]".to_string()))]);
        assert_eq!(v.to_string(), "{\"diags\":[{\"x\": 1}]}");
    }

    #[test]
    fn control_characters_escape_on_output() {
        assert_eq!(Json::Str("\u{1}".into()).to_string(), "\"\\u0001\"");
        let back = Json::parse("\"\\u0001\"").unwrap();
        assert_eq!(back, Json::Str("\u{1}".into()));
    }
}
