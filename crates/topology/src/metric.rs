//! The Cantor metric on ω-words: `μ(σ, σ′) = 2^{-j}` where `j` is the
//! first position on which the words differ (0 when they are equal).

use hierarchy_automata::lasso::Lasso;

/// Greatest common divisor (used for the comparison horizon).
fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple.
fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// The first position on which the two ω-words differ, or `None` if they
/// denote the same word.
///
/// Two ultimately periodic words that agree on a sufficiently long prefix
/// (`max(|u₁|, |u₂|) + lcm(|v₁|, |v₂|)`) agree everywhere, so the search is
/// bounded.
pub fn first_difference(a: &Lasso, b: &Lasso) -> Option<usize> {
    let horizon = a.spoke().len().max(b.spoke().len()) + lcm(a.cycle().len(), b.cycle().len());
    (0..horizon).find(|&j| a.at(j) != b.at(j))
}

/// The paper's distance `μ(σ, σ′) = 2^{-j}` (0 for equal words).
///
/// # Examples
///
/// ```
/// use hierarchy_automata::prelude::*;
/// use hierarchy_topology::metric::distance;
///
/// let sigma = Alphabet::new(["a", "b"]).unwrap();
/// let w1 = Lasso::parse(&sigma, "aa", "b").unwrap(); // a²b^ω
/// let w2 = Lasso::parse(&sigma, "aaaa", "b").unwrap(); // a⁴b^ω
/// assert_eq!(distance(&w1, &w2), 0.25); // differ first at position 2
/// ```
pub fn distance(a: &Lasso, b: &Lasso) -> f64 {
    match first_difference(a, b) {
        None => 0.0,
        Some(j) => (0.5f64).powi(j as i32),
    }
}

/// Whether `a` and `b` share a prefix longer than `len` (the paper's
/// convergence primitive).
pub fn share_prefix_longer_than(a: &Lasso, b: &Lasso, len: usize) -> bool {
    match first_difference(a, b) {
        None => true,
        Some(j) => j > len,
    }
}

/// Whether the sequence of words converges to `limit` in the metric —
/// verified up to the precision `2^{-depth}`: the tail of the sequence must
/// agree with the limit on prefixes of length `depth`.
///
/// A finite sample cannot *prove* convergence; this check is the
/// quantitative analogue used by tests and experiments.
pub fn converges_to(sequence: &[Lasso], limit: &Lasso, depth: usize) -> bool {
    // Distances must eventually drop below 2^{-depth} and stay there.
    let threshold = (0.5f64).powi(depth as i32);
    let tail_start = sequence.len().saturating_sub(3);
    sequence
        .iter()
        .skip(tail_start)
        .all(|w| distance(w, limit) < threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    #[test]
    fn metric_axioms_on_samples() {
        let sigma = ab();
        let words = [
            Lasso::parse(&sigma, "", "a").unwrap(),
            Lasso::parse(&sigma, "", "ab").unwrap(),
            Lasso::parse(&sigma, "a", "b").unwrap(),
            Lasso::parse(&sigma, "ab", "ab").unwrap(),
        ];
        for x in &words {
            assert_eq!(distance(x, x), 0.0);
            for y in &words {
                // Symmetry.
                assert_eq!(distance(x, y), distance(y, x));
                for z in &words {
                    // The ultrametric inequality (stronger than triangle).
                    assert!(distance(x, z) <= distance(x, y).max(distance(y, z)) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn equal_words_different_presentations() {
        let sigma = ab();
        let w1 = Lasso::parse(&sigma, "a", "ba").unwrap();
        let w2 = Lasso::parse(&sigma, "", "ab").unwrap();
        assert_eq!(first_difference(&w1, &w2), None);
        assert_eq!(distance(&w1, &w2), 0.0);
    }

    #[test]
    fn paper_distance_example() {
        // μ(aⁿb^ω, a²ⁿb^ω) = 2^{-n}.
        let sigma = ab();
        for n in 1..6 {
            let w1 = Lasso::parse(&sigma, &"a".repeat(n), "b").unwrap();
            let w2 = Lasso::parse(&sigma, &"a".repeat(2 * n), "b").unwrap();
            assert_eq!(distance(&w1, &w2), (0.5f64).powi(n as i32));
        }
    }

    #[test]
    fn paper_convergence_example() {
        // b^ω, ab^ω, a²b^ω, … converges to a^ω.
        let sigma = ab();
        let seq: Vec<Lasso> = (0..12)
            .map(|n| Lasso::parse(&sigma, &"a".repeat(n), "b").unwrap())
            .collect();
        let limit = Lasso::parse(&sigma, "", "a").unwrap();
        assert!(converges_to(&seq, &limit, 8));
        // It does not converge to b^ω.
        let wrong = Lasso::parse(&sigma, "", "b").unwrap();
        assert!(!converges_to(&seq, &wrong, 8));
    }

    #[test]
    fn share_prefix() {
        let sigma = ab();
        let w1 = Lasso::parse(&sigma, "aaab", "a").unwrap();
        let w2 = Lasso::parse(&sigma, "aaa", "a").unwrap();
        // They differ first at position 3.
        assert!(share_prefix_longer_than(&w1, &w2, 2));
        assert!(!share_prefix_longer_than(&w1, &w2, 3));
        assert!(share_prefix_longer_than(&w1, &w1, 1000));
    }
}
