//! Density (= liveness) and uniform liveness.
//!
//! Following \[AS85] as quoted in the paper, a property is a *liveness*
//! property iff `Pref(Π) = Σ⁺` — every finite word extends to a word of
//! `Π` — which is precisely topological *density* of `Π` in `Σ^ω`. For a
//! complete deterministic automaton this holds iff every reachable state
//! has a non-empty residual language.
//!
//! A *uniform liveness* property additionally has a single ω-word `σ′`
//! with `Σ⁺·σ′ ⊆ Π`.

use hierarchy_automata::lasso::Lasso;
use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_automata::StateId;

/// Whether the language is dense in `Σ^ω` (equivalently, a liveness
/// property).
pub fn is_dense(aut: &OmegaAutomaton) -> bool {
    let live = aut.live_states();
    aut.reachable_states().is_subset(&live)
}

/// Whether the language is a liveness property (alias of [`is_dense`],
/// matching the paper's terminology).
pub fn is_liveness(aut: &OmegaAutomaton) -> bool {
    is_dense(aut)
}

/// [`is_dense`] through a shared [`hierarchy_automata::analysis::Analysis`]
/// context (reuses the cached reachable and live sets).
pub fn is_dense_ctx(ctx: &hierarchy_automata::analysis::Analysis) -> bool {
    ctx.is_dense()
}

/// [`is_liveness`] through a shared analysis context (alias of
/// [`is_dense_ctx`]).
pub fn is_liveness_ctx(ctx: &hierarchy_automata::analysis::Analysis) -> bool {
    ctx.is_dense()
}

/// Whether the language is a *uniform* liveness property: some single
/// ω-word `σ′` satisfies `σ·σ′ ∈ Π` for every non-empty finite `σ`.
/// Returns a witness lasso if so.
///
/// Decided by intersecting the residual languages of all states reachable
/// by at least one symbol; the intersection is ω-regular, and it is
/// non-empty iff a (then ultimately periodic) uniform extension exists.
pub fn uniform_liveness_witness(aut: &OmegaAutomaton) -> Option<Lasso> {
    // States reachable by at least one symbol.
    let mut entry_states: Vec<StateId> = Vec::new();
    let reachable = aut.reachable_states();
    for q in reachable.iter() {
        for sym in aut.alphabet().symbols() {
            let t = aut.step(q as StateId, sym);
            if !entry_states.contains(&t) {
                entry_states.push(t);
            }
        }
    }
    let mut inter: Option<OmegaAutomaton> = None;
    for &q in &entry_states {
        let from_q = aut.with_initial(q);
        inter = Some(match inter {
            None => from_q,
            Some(acc) => acc.intersection(&from_q),
        });
    }
    inter.and_then(|m| m.accepted_lasso())
}

/// Whether the language is a uniform liveness property.
pub fn is_uniform_liveness(aut: &OmegaAutomaton) -> bool {
    uniform_liveness_witness(aut).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::acceptance::Acceptance;
    use hierarchy_automata::alphabet::Alphabet;
    use hierarchy_lang::witnesses;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    #[test]
    fn classic_liveness_examples() {
        // ◇b and □◇b and ◇□b are dense; □a is not.
        assert!(is_dense(&witnesses::guarantee()));
        assert!(is_dense(&witnesses::recurrence()));
        assert!(is_dense(&witnesses::persistence()));
        assert!(!is_dense(&witnesses::safety()));
        // Σ^ω is dense, ∅ is not.
        let sigma = ab();
        assert!(is_dense(&OmegaAutomaton::universal(&sigma)));
        assert!(!is_dense(&OmegaAutomaton::empty(&sigma)));
    }

    #[test]
    fn uniform_liveness_of_persistence() {
        // Σ*b^ω: the uniform extension σ′ = b^ω works after any prefix.
        let m = witnesses::persistence();
        let w = uniform_liveness_witness(&m).unwrap();
        let sigma = ab();
        // Verify: for several prefixes σ, σ·σ′ ∈ Π.
        for prefix in ["a", "b", "ab", "bba"] {
            let mut spoke: Vec<_> = prefix
                .chars()
                .map(|c| sigma.symbol(&c.to_string()).unwrap())
                .collect();
            spoke.extend_from_slice(w.spoke());
            let extended = Lasso::new(spoke, w.cycle().to_vec());
            assert!(m.accepts(&extended), "prefix {prefix}");
        }
    }

    #[test]
    fn paper_nonuniform_liveness_example_is_actually_uniform() {
        // The paper offers a·Σ*·aa·Σ^ω + b·Σ*·bb·Σ^ω ("the first state
        // appears sometimes later, twice in succession") as a liveness
        // property that is not uniform. In fact σ′ = aabb^ω *is* a uniform
        // extension — any σ starts with a or b and σ′ supplies both the aa
        // and the bb — and the checker finds a witness. (See
        // EXPERIMENTS.md; the guarantee-style requirement is satisfiable by
        // concatenating the two finite obligations.)
        let sigma = ab();
        let a = sigma.symbol("a").unwrap();
        // States: 0 initial; 1/2/3 track the aa-pair after a first a;
        // 4/5/6 track the bb-pair after a first b; 3 and 6 accept.
        let m = OmegaAutomaton::build(
            &sigma,
            7,
            0,
            move |q, s| match (q, s == a) {
                (0, true) => 1,
                (0, false) => 4,
                (1, true) => 2,
                (1, false) => 1,
                (2, true) => 3,
                (2, false) => 1,
                (3, _) => 3,
                (4, false) => 5,
                (4, true) => 4,
                (5, false) => 6,
                (5, true) => 4,
                (6, _) => 6,
                _ => unreachable!(),
            },
            Acceptance::inf([3, 6]),
        );
        assert!(is_dense(&m), "the example is a liveness property");
        let w = uniform_liveness_witness(&m).expect("uniform witness exists");
        // Sanity: prepend both kinds of prefix and check membership.
        for prefix in ["a", "b", "ab", "ba"] {
            let mut spoke: Vec<_> = prefix
                .chars()
                .map(|c| sigma.symbol(&c.to_string()).unwrap())
                .collect();
            spoke.extend_from_slice(w.spoke());
            let extended = Lasso::new(spoke, w.cycle().to_vec());
            assert!(m.accepts(&extended), "prefix {prefix}");
        }
    }

    #[test]
    fn corrected_nonuniform_liveness_example() {
        // a·Σ*·a^ω + b·Σ*·b^ω: "eventually only the first state" — the
        // required tails are contradictory, so no uniform extension exists.
        let sigma = ab();
        let a = sigma.symbol("a").unwrap();
        // States: 0 initial; 1 = first was a, last was a; 2 = first a,
        // last b; 3 = first b, last b; 4 = first b, last a.
        let m = OmegaAutomaton::build(
            &sigma,
            5,
            0,
            move |q, s| match (q, s == a) {
                (0, true) => 1,
                (0, false) => 3,
                (1 | 2, true) => 1,
                (1 | 2, false) => 2,
                (3 | 4, false) => 3,
                (3 | 4, true) => 4,
                _ => unreachable!(),
            },
            // Eventually always in "last symbol = first symbol":
            Acceptance::fin([2, 4]),
        );
        assert!(is_dense(&m), "liveness");
        assert!(!is_uniform_liveness(&m), "tails are contradictory");
    }

    #[test]
    fn uniform_liveness_witness_is_accepted_everywhere() {
        // □◇b is uniformly live with σ′ = b^ω.
        let m = witnesses::recurrence();
        assert!(is_uniform_liveness(&m));
        // □a is not even dense, hence not uniformly live.
        assert!(!is_uniform_liveness(&witnesses::safety()));
    }
}
