//! Constructive normal forms for the compound classes.
//!
//! * [`simple_obligation_decomposition`] — the paper's `Obl₁` form
//!   `Π = A(Φ) ∪ E(Ψ)` realized canonically as
//!   `Π = cl(Π ∖ int(Π)) ∪ int(Π)`: the construction succeeds exactly when
//!   `Π` is a simple obligation property.
//! * [`reactivity_cnf`] — the paper's reactivity conjunctive normal form
//!   `Π = ⋂ᵢ (R(Φᵢ) ∪ P(Ψᵢ))`, realized on the automaton's own transition
//!   structure whenever its acceptance condition converts to Streett pairs
//!   (each CNF clause carrying at most one `Fin` atom after merging the
//!   `Inf`s).

use crate::closure;
use hierarchy_automata::acceptance::Acceptance;
use hierarchy_automata::bitset::BitSet;
use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_automata::streett::{StreettPair, StreettPairs};

#[cfg(test)]
use hierarchy_automata::classify;

/// Decomposes a *simple obligation* property as `closed ∪ open`
/// (`A(Φ) ∪ E(Ψ)`), returning `None` when the language is not `Obl₁`.
///
/// Canonical choice: the open part is the interior of `Π`, the closed part
/// is the closure of the remainder; the union equals `Π` iff `Π` admits
/// any closed/open decomposition.
pub fn simple_obligation_decomposition(
    aut: &OmegaAutomaton,
) -> Option<(OmegaAutomaton, OmegaAutomaton)> {
    let open = closure::interior(aut);
    let rest = aut.difference(&open);
    let closed = closure::closure(&rest);
    let recomposed = closed.union(&open);
    if recomposed.equivalent(aut) {
        Some((closed, open))
    } else {
        None
    }
}

/// The dual `Obl₁` form: decomposes a simple obligation property as
/// `closed ∩ open` (`A(Φ) ∩ E(Ψ)`, the disjunctive-normal-form disjunct),
/// by dualizing [`simple_obligation_decomposition`] through the
/// complement. Succeeds exactly when the language is `Obl₁`.
pub fn simple_obligation_intersection_form(
    aut: &OmegaAutomaton,
) -> Option<(OmegaAutomaton, OmegaAutomaton)> {
    let (closed_c, open_c) = simple_obligation_decomposition(&aut.complement())?;
    // ¬(C ∪ U) = ¬C ∩ ¬U with ¬C open and ¬U closed.
    Some((open_c.complement(), closed_c.complement()))
}

/// Converts a boolean acceptance condition into Streett pairs over the
/// same state space, when its conjunctive normal form allows it (each
/// clause may contain several `Inf` atoms — merged by union — but at most
/// one `Fin` atom). Returns `None` otherwise.
pub fn acceptance_to_streett(acc: &Acceptance, num_states: usize) -> Option<StreettPairs> {
    // CNF via the DNF of the negation.
    let neg_dnf = acc.negated().dnf();
    let mut pairs = Vec::new();
    for rabin in neg_dnf {
        // ¬(Fin(F) ∧ ⋀ Inf(Iⱼ)) = Inf(F) ∨ ⋁ Fin(Iⱼ): a Streett pair needs
        // at most one Fin, i.e. at most one Iⱼ.
        match rabin.infs.len() {
            0 => pairs.push(StreettPair {
                recurrent: rabin.fin.clone(),
                persistent: BitSet::new(),
            }),
            1 => pairs.push(StreettPair {
                recurrent: rabin.fin.clone(),
                persistent: rabin.infs[0].complement(num_states),
            }),
            _ => return None,
        }
    }
    Some(StreettPairs(pairs))
}

/// One clause of the reactivity conjunctive normal form: the recurrence
/// and persistence disjuncts, as automata on the original structure.
#[derive(Debug, Clone)]
pub struct ReactivityClause {
    /// `R(Φᵢ)` — the recurrence disjunct.
    pub recurrence: OmegaAutomaton,
    /// `P(Ψᵢ)` — the persistence disjunct.
    pub persistence: OmegaAutomaton,
}

/// The paper's reactivity conjunctive normal form
/// `Π = ⋂ᵢ (R(Φᵢ) ∪ P(Ψᵢ))`, with each disjunct realized on the
/// automaton's own transition structure. Returns `None` when the
/// acceptance condition does not convert to Streett pairs on this
/// structure (see [`acceptance_to_streett`]).
pub fn reactivity_cnf(aut: &OmegaAutomaton) -> Option<Vec<ReactivityClause>> {
    let pairs = acceptance_to_streett(aut.acceptance(), aut.num_states())?;
    Some(
        pairs
            .0
            .iter()
            .map(|p| ReactivityClause {
                recurrence: aut.with_acceptance(Acceptance::Inf(p.recurrent.clone())),
                persistence: aut
                    .with_acceptance(Acceptance::Fin(p.persistent.complement(aut.num_states()))),
            })
            .collect(),
    )
}

/// Checks that a CNF recomposes to the original language (used by tests
/// and the experiments; cheap relative to producing it).
pub fn cnf_recomposes(aut: &OmegaAutomaton, cnf: &[ReactivityClause]) -> bool {
    let mut acc = OmegaAutomaton::universal(aut.alphabet());
    for clause in cnf {
        acc = acc.intersection(&clause.recurrence.union(&clause.persistence));
    }
    acc.equivalent(aut)
}

/// Convenience: `Π` is a simple obligation iff the canonical decomposition
/// succeeds — cross-validated against the chain-based classifier.
pub fn is_simple_obligation(aut: &OmegaAutomaton) -> bool {
    simple_obligation_decomposition(aut).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::random;
    use hierarchy_automata::random::rng::SeedableRng;
    use hierarchy_automata::random::rng::StdRng;
    use hierarchy_lang::witnesses;

    #[test]
    fn simple_obligation_decomposes() {
        // □a ∨ ◇c over {a,b,c} is Obl₁.
        let sigma = hierarchy_automata::alphabet::Alphabet::new(["a", "b", "c"]).unwrap();
        let b = sigma.symbol("b").unwrap();
        let cc = sigma.symbol("c").unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |q, s| {
                if q == 2 || s == cc {
                    2
                } else if q == 1 || s == b {
                    1
                } else {
                    0
                }
            },
            Acceptance::fin([1, 2]).or(Acceptance::inf([2])),
        );
        let (closed, open) = simple_obligation_decomposition(&m).unwrap();
        assert!(classify::is_safety(&closed));
        assert!(classify::is_guarantee(&open));
        assert!(closed.union(&open).equivalent(&m));
    }

    #[test]
    fn non_simple_obligations_fail() {
        // The paper's a*b^ω + Σ*cΣ^ω is Obl₂ (erratum 1 in EXPERIMENTS.md):
        assert!(simple_obligation_decomposition(&witnesses::obligation_simple()).is_none());
        // Recurrence witnesses are not obligations at all.
        assert!(simple_obligation_decomposition(&witnesses::recurrence()).is_none());
        // Safety and guarantee decompose trivially.
        assert!(simple_obligation_decomposition(&witnesses::safety()).is_some());
        assert!(simple_obligation_decomposition(&witnesses::guarantee()).is_some());
    }

    #[test]
    fn decomposition_agrees_with_index_on_random_automata() {
        let sigma = hierarchy_automata::alphabet::Alphabet::new(["a", "b"]).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..150 {
            let (aut, _) = random::random_streett(&mut rng, &sigma, 5, 2, 0.3);
            let c = classify::classify(&aut);
            let is_obl1 = c.is_obligation && c.obligation_index == Some(1);
            assert_eq!(
                is_simple_obligation(&aut),
                is_obl1,
                "decomposition and index disagree"
            );
        }
    }

    #[test]
    fn intersection_form_duals() {
        // □¬c ∧ ◇b over {a,b,c}: a genuine A ∩ E property (the DNF-level-1
        // shape). Note that the CNF- and DNF-level-1 classes are *distinct*
        // gradings (the paper keeps two symmetric hierarchies): the CNF₁
        // witness □a ∨ ◇c has no A ∩ E presentation.
        let sigma = hierarchy_automata::alphabet::Alphabet::new(["a", "b", "c"]).unwrap();
        let b = sigma.symbol("b").unwrap();
        let cc = sigma.symbol("c").unwrap();
        // States: 0 = no b yet, 1 = saw b, 2 = saw c (dead).
        let m = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |q, s| {
                if q == 2 || s == cc {
                    2
                } else if q == 1 || s == b {
                    1
                } else {
                    0
                }
            },
            Acceptance::inf([1]).and(Acceptance::fin([2])),
        );
        let (closed, open) = simple_obligation_intersection_form(&m).unwrap();
        assert!(classify::is_safety(&closed));
        assert!(classify::is_guarantee(&open));
        assert!(closed.intersection(&open).equivalent(&m));
        // The CNF₁ witness □a ∨ ◇c has a union form but no intersection
        // form…
        let cnf1 = m.with_acceptance(Acceptance::fin([1, 2]).or(Acceptance::inf([2])));
        assert!(simple_obligation_decomposition(&cnf1).is_some());
        assert!(simple_obligation_intersection_form(&cnf1).is_none());
        // …and dually for □¬c ∧ ◇b.
        assert!(simple_obligation_decomposition(&m).is_none());
        // Neither form exists for an Obl₂ language.
        assert!(simple_obligation_intersection_form(&witnesses::obligation_simple()).is_none());
    }

    #[test]
    fn streett_conversion_roundtrip() {
        let sigma = hierarchy_automata::alphabet::Alphabet::new(["a", "b"]).unwrap();
        let mut rng = StdRng::seed_from_u64(78);
        for _ in 0..20 {
            let (aut, pairs) = random::random_streett(&mut rng, &sigma, 5, 2, 0.3);
            let converted =
                acceptance_to_streett(aut.acceptance(), aut.num_states()).expect("streett input");
            // Same acceptance behaviour on all infinity sets.
            for bits in 1u8..32 {
                let inf: BitSet = (0..5).filter(|i| bits & (1 << i) != 0).collect();
                assert_eq!(
                    pairs.accepts_infinity_set(&inf),
                    converted.accepts_infinity_set(&inf)
                );
            }
        }
    }

    #[test]
    fn reactivity_cnf_recomposes() {
        let sigma = hierarchy_automata::alphabet::Alphabet::new(["a", "b"]).unwrap();
        let mut rng = StdRng::seed_from_u64(79);
        for _ in 0..15 {
            let (aut, _) = random::random_streett(&mut rng, &sigma, 5, 2, 0.3);
            let cnf = reactivity_cnf(&aut).expect("streett acceptance converts");
            assert!(cnf_recomposes(&aut, &cnf));
            for clause in &cnf {
                assert!(classify::is_recurrence(&clause.recurrence));
                assert!(classify::is_persistence(&clause.persistence));
            }
        }
        // The reactivity witnesses have their index many clauses.
        let w = witnesses::reactivity_witness(2);
        let cnf = reactivity_cnf(&w).expect("converts");
        assert_eq!(cnf.len(), 2);
        assert!(cnf_recomposes(&w, &cnf));
    }
}
