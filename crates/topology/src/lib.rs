#![warn(missing_docs)]

//! The **topological view** of the Manna–Pnueli hierarchy (Section 3 of
//! *A Hierarchy of Temporal Properties*, PODC 1990).
//!
//! `Σ^ω` with the Cantor metric `μ(σ, σ′) = 2^{-j}` (where `j` is the
//! first position on which the words differ) is a complete metric space,
//! and the hierarchy coincides with the bottom of the Borel hierarchy:
//!
//! | class       | topology            |
//! |-------------|---------------------|
//! | safety      | closed sets (F)     |
//! | guarantee   | open sets (G)       |
//! | obligation  | boolean combinations of open sets |
//! | recurrence  | G_δ (countable intersections of open sets) |
//! | persistence | F_σ (countable unions of closed sets)      |
//! | liveness    | dense sets          |
//!
//! This crate provides the metric ([`metric`]), limit points and closure
//! ([`closure`]), density and uniform liveness ([`density`]), and the
//! safety–liveness decomposition `Π = A(Pref(Π)) ∩ L(Π)`
//! ([`decomposition`]).

pub mod closure;
pub mod decomposition;
pub mod density;
pub mod metric;
pub mod normal_forms;
