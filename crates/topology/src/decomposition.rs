//! The safety–liveness decomposition: every property is the intersection
//! of a safety property and a liveness property (the paper's Claim in
//! Section 2, after \[Lam83]/\[AS85]), and the two classifications are
//! orthogonal — the liveness part retains the original's hierarchy class.
//!
//! * safety part: the safety closure `Π_S = A(Pref(Π))`;
//! * liveness part: the *liveness extension*
//!   `L(Π) = Π ∪ E(¬Pref(Π))` — the words of `Π` plus every word with a
//!   prefix that cannot be extended into `Π`.

use crate::density;
use hierarchy_automata::analysis::Analysis;
use hierarchy_automata::classify;
use hierarchy_automata::omega::OmegaAutomaton;

/// The liveness extension `L(Π) = Π ∪ E(¬Pref(Π))`.
pub fn liveness_extension(aut: &OmegaAutomaton) -> OmegaAutomaton {
    // E(¬Pref(Π)) = words with a dead prefix = complement of the safety
    // closure.
    let escape = classify::safety_closure(aut).complement();
    aut.union(&escape)
}

/// [`liveness_extension`] through a shared [`Analysis`] context (the
/// safety closure comes from the cached live set).
pub fn liveness_extension_ctx(ctx: &Analysis) -> OmegaAutomaton {
    let escape = ctx.safety_closure().complement();
    ctx.automaton().union(&escape)
}

/// The safety–liveness decomposition `Π = Π_S ∩ Π_L` with
/// `Π_S = A(Pref(Π))` and `Π_L = L(Π)`.
pub fn decompose(aut: &OmegaAutomaton) -> (OmegaAutomaton, OmegaAutomaton) {
    (classify::safety_closure(aut), liveness_extension(aut))
}

/// [`decompose`] through a shared [`Analysis`] context: the live-state
/// computation behind the safety closure runs once and serves both parts.
pub fn decompose_ctx(ctx: &Analysis) -> (OmegaAutomaton, OmegaAutomaton) {
    (ctx.safety_closure(), liveness_extension_ctx(ctx))
}

/// Checks the decomposition theorem for `aut`: the safety part is a safety
/// property, the liveness part is dense, and their intersection is the
/// original language. Returns `false` only on an implementation bug; used
/// by tests and the `TAB-SL` experiment.
pub fn decomposition_is_valid(aut: &OmegaAutomaton) -> bool {
    let (s, l) = decompose(aut);
    classify::is_safety(&s) && density::is_dense(&l) && s.intersection(&l).equivalent(aut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::acceptance::Acceptance;
    use hierarchy_automata::alphabet::Alphabet;
    use hierarchy_automata::random;
    use hierarchy_automata::random::rng::SeedableRng;
    use hierarchy_automata::random::rng::StdRng;
    use hierarchy_lang::{operators, witnesses, FinitaryProperty};

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    #[test]
    fn paper_a_until_b_example() {
        // aUb = (aWb) ∩ ◇b: safety closure is aWb (= a^ω ∪ a*bΣ^ω), the
        // liveness part is ◇b itself (no dead prefixes beyond it).
        let sigma = ab();
        // aUb = a*bΣ^ω = E(a*b).
        let until = operators::e(&FinitaryProperty::parse(&sigma, "a*b").unwrap());
        let (s, l) = decompose(&until);
        // Safety part = a^ω + a*bΣ^ω.
        let a_omega = operators::a(&FinitaryProperty::parse(&sigma, "aa*").unwrap());
        assert!(s.equivalent(&until.union(&a_omega)));
        // Liveness part: ◇b ∪ (words with a dead prefix — none here since
        // Pref(aUb) = Σ⁺… every finite word extends into a*bΣ^ω? A word
        // starting with b is already in; a word a…a extends with b; a word
        // containing b after a is in. So Pref = Σ⁺ and L(Π) = Π = ◇-style.
        assert!(density::is_dense(&l));
        assert!(s.intersection(&l).equivalent(&until));
    }

    #[test]
    fn decomposition_on_witnesses() {
        for m in [
            witnesses::safety(),
            witnesses::guarantee(),
            witnesses::recurrence(),
            witnesses::persistence(),
            witnesses::obligation_simple(),
            witnesses::obligation_witness(3),
            witnesses::reactivity_witness(2),
        ] {
            assert!(decomposition_is_valid(&m));
        }
    }

    #[test]
    fn decomposition_on_random_automata() {
        let sigma = ab();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..30 {
            let (aut, _) = random::random_streett(&mut rng, &sigma, 6, 2, 0.3);
            assert!(decomposition_is_valid(&aut));
        }
    }

    #[test]
    fn safety_part_of_safety_is_itself() {
        let s = witnesses::safety();
        let (sp, lp) = decompose(&s);
        assert!(sp.equivalent(&s));
        // The liveness part of a safety property is Π ∪ ¬Π-escapes = Σ^ω
        // only when Π is also live; in general it is Π ∪ E(¬Pref Π).
        assert!(density::is_dense(&lp));
    }

    #[test]
    fn liveness_extension_preserves_class() {
        // The paper: if Π is of class κ then L(Π) is a *live κ-property*
        // (the non-safety classes are closed under union with guarantee).
        let rec = witnesses::recurrence();
        let l = liveness_extension(&rec);
        assert!(classify::is_recurrence(&l));
        assert!(density::is_dense(&l));

        let per = witnesses::persistence();
        let l = liveness_extension(&per);
        assert!(classify::is_persistence(&l));

        let gua = witnesses::guarantee();
        let l = liveness_extension(&gua);
        assert!(classify::is_guarantee(&l));

        let obl = witnesses::obligation_simple();
        let l = liveness_extension(&obl);
        assert!(classify::is_obligation(&l));
    }

    #[test]
    fn trivial_properties() {
        let sigma = ab();
        let full = OmegaAutomaton::universal(&sigma);
        assert!(decomposition_is_valid(&full));
        // The empty property: safety part is ∅ (closed), liveness part is
        // Σ^ω (every prefix is dead).
        let empty = OmegaAutomaton::empty(&sigma);
        let (s, l) = decompose(&empty);
        assert!(s.is_empty());
        assert!(l.is_universal());
        assert!(decomposition_is_valid(&empty));
    }

    #[test]
    fn safety_and_liveness_overlap_only_trivially() {
        // A property that is both safety and liveness is Σ^ω: dense +
        // closed = everything.
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            Acceptance::inf([0]).or(Acceptance::fin([0, 1])),
        );
        if classify::is_safety(&m) && density::is_dense(&m) {
            assert!(m.is_universal());
        }
        // And the canonical pair: □a closed but not dense; ◇b dense but
        // not closed.
        assert!(!density::is_dense(&witnesses::safety()));
        assert!(!classify::is_safety(&witnesses::guarantee()));
    }
}
