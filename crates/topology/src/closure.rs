//! Topological closure, limit points, and the Borel-level predicates.
//!
//! The paper's central identity (Section 3) is `cl(Π) = A(Pref(Π))`: the
//! topological closure of an ω-regular property coincides with its safety
//! closure, so all topological notions are computable on the automaton.

use hierarchy_automata::analysis::Analysis;
use hierarchy_automata::classify;
use hierarchy_automata::lasso::Lasso;
use hierarchy_automata::omega::OmegaAutomaton;

/// The topological closure `cl(Π) = A(Pref(Π))` of the automaton's
/// language.
pub fn closure(aut: &OmegaAutomaton) -> OmegaAutomaton {
    classify::safety_closure(aut)
}

/// [`closure`] through a shared [`Analysis`] context (reuses the cached
/// live set; language-equal to the free version).
pub fn closure_ctx(ctx: &Analysis) -> OmegaAutomaton {
    ctx.safety_closure()
}

/// [`is_closed`] through a shared [`Analysis`] context (one field of the
/// cached full verdict).
pub fn is_closed_ctx(ctx: &Analysis) -> bool {
    ctx.is_safety()
}

/// [`is_open`] through a shared [`Analysis`] context.
pub fn is_open_ctx(ctx: &Analysis) -> bool {
    ctx.is_guarantee()
}

/// [`is_clopen`] through a shared [`Analysis`] context.
pub fn is_clopen_ctx(ctx: &Analysis) -> bool {
    ctx.is_safety() && ctx.is_guarantee()
}

/// [`is_g_delta`] through a shared [`Analysis`] context.
pub fn is_g_delta_ctx(ctx: &Analysis) -> bool {
    ctx.is_recurrence()
}

/// [`is_f_sigma`] through a shared [`Analysis`] context.
pub fn is_f_sigma_ctx(ctx: &Analysis) -> bool {
    ctx.is_persistence()
}

/// The interior of the language: the largest open subset, computed as the
/// complement of the closure of the complement.
pub fn interior(aut: &OmegaAutomaton) -> OmegaAutomaton {
    closure(&aut.complement()).complement()
}

/// Whether the word is a limit point of the language: every neighbourhood
/// of `w` meets `Π`, i.e. every finite prefix of `w` is in `Pref(Π)`.
pub fn is_limit_point(aut: &OmegaAutomaton, w: &Lasso) -> bool {
    closure(aut).accepts(w)
}

/// Whether the language is closed (= a safety property, Π₁ / F).
pub fn is_closed(aut: &OmegaAutomaton) -> bool {
    classify::is_safety(aut)
}

/// Whether the language is open (= a guarantee property, Σ₁ / G).
pub fn is_open(aut: &OmegaAutomaton) -> bool {
    classify::is_guarantee(aut)
}

/// Whether the language is clopen (both closed and open).
pub fn is_clopen(aut: &OmegaAutomaton) -> bool {
    is_closed(aut) && is_open(aut)
}

/// Whether the language is G_δ — a countable intersection of open sets
/// (= a recurrence property, Π₂).
pub fn is_g_delta(aut: &OmegaAutomaton) -> bool {
    classify::is_recurrence(aut)
}

/// Whether the language is F_σ — a countable union of closed sets (= a
/// persistence property, Σ₂).
pub fn is_f_sigma(aut: &OmegaAutomaton) -> bool {
    classify::is_persistence(aut)
}

/// The paper's `G_k` construction witnessing that `(a*b)^ω` is G_δ: the
/// open set of words with at least `k` occurrences of symbols from
/// `target`, over the automaton's alphabet. The recurrence property
/// "infinitely many `target`s" is the intersection of all `G_k`.
pub fn at_least_k_occurrences(
    alphabet: &hierarchy_automata::alphabet::Alphabet,
    target: hierarchy_automata::alphabet::Symbol,
    k: usize,
) -> OmegaAutomaton {
    use hierarchy_automata::acceptance::Acceptance;
    use hierarchy_automata::StateId;
    // Count occurrences up to k, then accept everything.
    OmegaAutomaton::build(
        alphabet,
        k + 1,
        0,
        |q, s| {
            if (q as usize) < k && s == target {
                q + 1
            } else {
                q
            }
        },
        Acceptance::Inf([k].into_iter().collect()),
    )
    .with_initial(0 as StateId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;
    use hierarchy_lang::{operators, witnesses, FinitaryProperty};

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    #[test]
    fn closure_of_open_example() {
        // cl(a⁺b^ω) = a⁺b^ω + a^ω — the paper's example.
        let sigma = ab();
        // a⁺b^ω = A(a⁺b*) ∩ P(a⁺b⁺).
        let lang = operators::a(&FinitaryProperty::parse(&sigma, "aa*b*").unwrap()).intersection(
            &operators::p(&FinitaryProperty::parse(&sigma, "aa*bb*").unwrap()),
        );
        let cl = closure(&lang);
        // The closure adds exactly a^ω:
        let a_omega = operators::a(&FinitaryProperty::parse(&sigma, "aa*").unwrap());
        assert!(cl.equivalent(&lang.union(&a_omega)));
        assert!(is_closed(&cl));
        assert!(!is_closed(&lang));
        // a^ω is a limit point of a⁺b^ω but not a member.
        let w = hierarchy_automata::lasso::Lasso::parse(&sigma, "", "a").unwrap();
        assert!(is_limit_point(&lang, &w));
        assert!(!lang.accepts(&w));
    }

    #[test]
    fn borel_levels_of_witnesses() {
        assert!(is_closed(&witnesses::safety()));
        assert!(!is_open(&witnesses::safety()));
        assert!(is_open(&witnesses::guarantee()));
        assert!(!is_closed(&witnesses::guarantee()));
        assert!(is_g_delta(&witnesses::recurrence()));
        assert!(!is_f_sigma(&witnesses::recurrence()));
        assert!(is_f_sigma(&witnesses::persistence()));
        assert!(!is_g_delta(&witnesses::persistence()));
        // Closed and open sets are both G_δ and F_σ.
        for w in [witnesses::safety(), witnesses::guarantee()] {
            assert!(is_g_delta(&w) && is_f_sigma(&w));
        }
        // The paper's clopen observation: E(a⁺b*) over {a,b}.
        assert!(is_clopen(&witnesses::guarantee_paper_example()));
    }

    #[test]
    fn interior_duality() {
        let rec = witnesses::recurrence();
        // int(Π) = ¬cl(¬Π).
        let int = interior(&rec);
        assert!(is_open(&int));
        assert!(int.is_subset_of(&rec));
        // The interior of (a*b)^ω is empty: every word can be extended to
        // leave the set.
        assert!(int.is_empty());
        // The interior of an open set is itself.
        let g = witnesses::guarantee();
        assert!(interior(&g).equivalent(&g));
    }

    #[test]
    fn g_delta_intersection_witness() {
        // Π = (a*b)^ω = ⋂ₖ G_k with G_k = "at least k b's" — check the
        // first few levels.
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        let rec = witnesses::recurrence();
        let mut inter = OmegaAutomaton::universal(&sigma);
        for k in 1..=4 {
            let g_k = at_least_k_occurrences(&sigma, b, k);
            assert!(is_open(&g_k), "G_{k} must be open");
            assert!(rec.is_subset_of(&g_k), "Π ⊆ G_{k}");
            inter = inter.intersection(&g_k);
        }
        // Finite intersections strictly over-approximate Π…
        assert!(rec.is_subset_of(&inter));
        assert!(!inter.is_subset_of(&rec));
        // …and each finite level is still open (the paper's remark).
        assert!(is_open(&inter));
    }

    #[test]
    fn closure_is_idempotent_and_monotone() {
        let g = witnesses::guarantee();
        let r = witnesses::recurrence();
        let cg = closure(&g);
        assert!(closure(&cg).equivalent(&cg));
        // Monotone: g ⊆ r ∪ g ⇒ cl(g) ⊆ cl(r ∪ g).
        let u = r.union(&g);
        assert!(closure(&g).is_subset_of(&closure(&u)));
    }
}
