#![warn(missing_docs)]

//! The Manna–Pnueli safety–progress hierarchy of temporal properties,
//! unified across the paper's four views.
//!
//! *A Hierarchy of Temporal Properties* (Manna & Pnueli, PODC 1990)
//! classifies ω-word properties into six classes — safety, guarantee,
//! obligation, recurrence, persistence, reactivity — and characterizes them
//! linguistically (the `A`/`E`/`R`/`P` operators over finitary properties),
//! topologically (the bottom of the Borel hierarchy), in temporal logic
//! (`□p`, `◇p`, `□◇p`, `◇□p` over past formulas), and by deterministic
//! Streett automata. This crate ties the four view crates together behind
//! one [`Property`] type:
//!
//! ```
//! use hierarchy_core::prelude::*;
//!
//! let sigma = Alphabet::of_propositions(["req", "ack"]).unwrap();
//! // The response property □(req → ◇ack).
//! let p = Property::parse(&sigma, "G (req -> F ack)").unwrap();
//! let report = p.report();
//! assert_eq!(report.class, HierarchyClass::Recurrence);
//! assert_eq!(report.borel, "Π₂");
//! assert!(report.is_liveness);
//! ```
//!
//! The view crates remain available for direct use:
//!
//! * [`automata`] — ω-automata, acceptance conditions, the classification
//!   decision procedures (`classify`), the paper's structural checks
//!   (`paper_checks`), counter-freedom;
//! * [`lang`] — regular finitary properties, the `A`/`E`/`R`/`P`
//!   operators, `minex`, the canonical witness families;
//! * [`logic`] — LTL+Past, lasso semantics, past testers, formula
//!   compilation, syntactic classification;
//! * [`topology`] — the Cantor metric, closure, density, the
//!   safety–liveness decomposition;
//! * [`fts`] — fair transition systems and the model checker, with
//!   Peterson's algorithm and `MUX-SEM` as example programs;
//! * [`lint`] — `spec-lint`, static analysis for specifications across
//!   all four substrates, with a stable rule catalogue and JSON output.

pub use hierarchy_automata as automata;
pub use hierarchy_fts as fts;
pub use hierarchy_lang as lang;
pub use hierarchy_lint as lint;
pub use hierarchy_logic as logic;
pub use hierarchy_topology as topology;

mod property;
mod servable;

pub use property::{HierarchyClass, Property, PropertyError, PropertyReport};
pub use servable::Servable;

/// Audits a suite of named [`Property`] values — the library front end
/// of `spec-lint audit` (rules `SUITE001`–`SUITE005`, subsumption
/// lattice, dominance DAG, hierarchy histogram; see
/// [`lint::suite`]). The audit runs over each property's live
/// [`Analysis`](automata::analysis::Analysis) context, so a re-audit of
/// the same properties rides the memoized inclusion matrix.
pub fn audit_properties<'a>(
    items: impl IntoIterator<Item = (&'a str, &'a Property)>,
    opts: &lint::AuditOptions,
) -> Result<lint::SuiteAudit, lint::AuditError> {
    let borrowed: Vec<(&str, &automata::analysis::Analysis)> = items
        .into_iter()
        .map(|(name, p)| (name, p.analysis()))
        .collect();
    lint::audit_suite_ctx(&borrowed, opts)
}

/// Commonly used items across the workspace.
pub mod prelude {
    pub use crate::automata::prelude::*;
    pub use crate::lang::{operators, witnesses, FinitaryProperty};
    pub use crate::lint::AuditOptions;
    pub use crate::logic::{Formula, SyntacticClass};
    pub use crate::{audit_properties, HierarchyClass, Property, PropertyReport, Servable};
}
