//! The unified [`Property`] type and its classification report.

use hierarchy_automata::alphabet::Alphabet;
use hierarchy_automata::analysis::{Analysis, AnalysisStats, ProductOp};
use hierarchy_automata::classify::Classification;
use hierarchy_automata::counterfree::CounterFreedom;
use hierarchy_automata::lasso::Lasso;
use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_lang::{operators, FinitaryProperty};
use hierarchy_logic::to_automaton::{self, CompileError};
use hierarchy_logic::{Formula, ParseError, SyntacticClass};
use hierarchy_topology::{decomposition, density};
use std::fmt;

/// The strictest class of a property in the hierarchy (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierarchyClass {
    /// Both safety and guarantee (topologically clopen).
    Clopen,
    /// `A(Φ)` — closed (Π₁).
    Safety,
    /// `E(Φ)` — open (Σ₁).
    Guarantee,
    /// Boolean combinations of safety and guarantee (Δ₂); the payload is
    /// the exact `Obl_k` level.
    Obligation(usize),
    /// `R(Φ)` — G_δ (Π₂).
    Recurrence,
    /// `P(Φ)` — F_σ (Σ₂).
    Persistence,
    /// `R(Φ) ∪ P(Ψ)` — a single Streett pair suffices.
    SimpleReactivity,
    /// General reactivity (Δ₃); the payload is the exact index (≥ 2).
    Reactivity(usize),
}

impl HierarchyClass {
    /// Derives the strictest class from an exact [`Classification`].
    pub fn from_classification(c: &Classification) -> HierarchyClass {
        if c.is_safety && c.is_guarantee {
            HierarchyClass::Clopen
        } else if c.is_safety {
            HierarchyClass::Safety
        } else if c.is_guarantee {
            HierarchyClass::Guarantee
        } else if c.is_obligation {
            HierarchyClass::Obligation(c.obligation_index.unwrap_or(1))
        } else if c.is_recurrence {
            HierarchyClass::Recurrence
        } else if c.is_persistence {
            HierarchyClass::Persistence
        } else if c.is_simple_reactivity {
            HierarchyClass::SimpleReactivity
        } else {
            HierarchyClass::Reactivity(c.reactivity_index)
        }
    }

    /// The proof principle the paper associates with the class: an
    /// invariance argument for safety, explicit well-founded arguments for
    /// the progress classes.
    pub fn proof_principle(&self) -> &'static str {
        match self {
            HierarchyClass::Clopen | HierarchyClass::Safety => {
                "invariance (computational induction): show the property holds \
                 initially and is preserved by every program step"
            }
            HierarchyClass::Guarantee => {
                "well-founded ranking: exhibit a rank function that decreases \
                 until the goal prefix is reached"
            }
            HierarchyClass::Obligation(_) => {
                "case split into safety and guarantee parts; invariance plus a \
                 one-shot well-founded argument"
            }
            HierarchyClass::Recurrence => {
                "response rule: a well-founded argument re-armed after every \
                 fulfilment (proves □(p → ◇q) under weak fairness)"
            }
            HierarchyClass::Persistence => {
                "stabilization rule: a well-founded argument showing the bad \
                 region is exited finitely often"
            }
            HierarchyClass::SimpleReactivity | HierarchyClass::Reactivity(_) => {
                "reactivity rule: interleaved response arguments under strong \
                 fairness assumptions"
            }
        }
    }
}

impl fmt::Display for HierarchyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyClass::Clopen => write!(f, "safety ∩ guarantee"),
            HierarchyClass::Safety => write!(f, "safety"),
            HierarchyClass::Guarantee => write!(f, "guarantee"),
            HierarchyClass::Obligation(k) => write!(f, "obligation (Obl_{k})"),
            HierarchyClass::Recurrence => write!(f, "recurrence"),
            HierarchyClass::Persistence => write!(f, "persistence"),
            HierarchyClass::SimpleReactivity => write!(f, "simple reactivity"),
            HierarchyClass::Reactivity(k) => write!(f, "reactivity (level {k})"),
        }
    }
}

/// Errors constructing a [`Property`].
#[derive(Debug)]
#[non_exhaustive]
pub enum PropertyError {
    /// The formula failed to parse.
    Parse(ParseError),
    /// The formula could not be compiled into the hierarchy fragment.
    Compile(CompileError),
}

impl fmt::Display for PropertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyError::Parse(e) => write!(f, "{e}"),
            PropertyError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PropertyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PropertyError::Parse(e) => Some(e),
            PropertyError::Compile(e) => Some(e),
        }
    }
}

/// A temporal property: an ω-regular language together with everything the
/// paper says about it.
///
/// Internally a complete deterministic ω-automaton wrapped in a shared
/// [`Analysis`] context, so repeated queries — `class()`, `report()`,
/// `borel` names, decompositions, inclusion tests — are incremental:
/// the SCC passes, live sets, products, and the full classification are
/// computed once and reused. Constructors accept any of the paper's
/// views (formulas, operator applications, raw automata).
#[derive(Debug, Clone)]
pub struct Property {
    analysis: Analysis,
    formula: Option<Formula>,
}

/// Everything the paper can tell you about one property.
#[derive(Debug, Clone)]
pub struct PropertyReport {
    /// The exact semantic classification.
    pub classification: Classification,
    /// The strictest class.
    pub class: HierarchyClass,
    /// The Borel-level name (Π₁/Σ₁/Δ₂/Π₂/Σ₂/Δ₃).
    pub borel: &'static str,
    /// The syntactic class of the defining formula, when one is known.
    pub syntactic: Option<SyntacticClass>,
    /// Whether the property is a liveness (dense) property.
    pub is_liveness: bool,
    /// Whether a single extension witnesses liveness uniformly.
    pub is_uniform_liveness: bool,
    /// Whether the property is expressible in temporal logic
    /// (counter-freedom of its automaton).
    pub is_counter_free: bool,
    /// The paper's recommended proof principle.
    pub proof_principle: &'static str,
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "class:           {} ({})", self.class, self.borel)?;
        if let Some(syn) = self.syntactic {
            writeln!(f, "syntactic class: {syn}")?;
        }
        writeln!(
            f,
            "liveness:        {}{}",
            if self.is_liveness { "yes" } else { "no" },
            if self.is_uniform_liveness {
                " (uniform)"
            } else {
                ""
            }
        )?;
        writeln!(
            f,
            "LTL-expressible: {}",
            if self.is_counter_free {
                "yes (counter-free)"
            } else {
                "no (counting)"
            }
        )?;
        write!(f, "proof principle: {}", self.proof_principle)
    }
}

impl Property {
    /// Wraps a deterministic ω-automaton.
    pub fn from_automaton(aut: OmegaAutomaton) -> Self {
        Property {
            analysis: Analysis::new(aut),
            formula: None,
        }
    }

    /// Builds a property from a temporal formula.
    ///
    /// # Errors
    ///
    /// Returns [`PropertyError::Compile`] when the formula is outside the
    /// canonicalizable hierarchy fragment.
    pub fn from_formula(alphabet: &Alphabet, formula: &Formula) -> Result<Self, PropertyError> {
        let aut = to_automaton::compile_over(alphabet, formula).map_err(PropertyError::Compile)?;
        Ok(Property {
            analysis: Analysis::new(aut),
            formula: Some(formula.clone()),
        })
    }

    /// Parses and compiles a formula (see [`Formula::parse`] for the
    /// grammar).
    ///
    /// # Errors
    ///
    /// Returns a [`PropertyError`] on parse or compilation failure.
    pub fn parse(alphabet: &Alphabet, source: &str) -> Result<Self, PropertyError> {
        let formula = Formula::parse(alphabet, source).map_err(PropertyError::Parse)?;
        Self::from_formula(alphabet, &formula)
    }

    /// `A(Φ)` — the safety property of `Φ`-prefixed words.
    pub fn always_of(phi: &FinitaryProperty) -> Self {
        Self::from_automaton(operators::a(phi))
    }

    /// `E(Φ)` — the guarantee property.
    pub fn eventually_of(phi: &FinitaryProperty) -> Self {
        Self::from_automaton(operators::e(phi))
    }

    /// `R(Φ)` — the recurrence property.
    pub fn recurrently_of(phi: &FinitaryProperty) -> Self {
        Self::from_automaton(operators::r(phi))
    }

    /// `P(Φ)` — the persistence property.
    pub fn persistently_of(phi: &FinitaryProperty) -> Self {
        Self::from_automaton(operators::p(phi))
    }

    /// The underlying automaton.
    pub fn automaton(&self) -> &OmegaAutomaton {
        self.analysis.automaton()
    }

    /// The shared memoized analysis context backing this property. Use it
    /// directly for lower-level cached queries (SCCs, condensation, live
    /// sets) or to inspect the cache counters via [`Analysis::stats`].
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// A snapshot of the analysis-cache counters (SCC passes/hits,
    /// products built/hits).
    pub fn analysis_stats(&self) -> AnalysisStats {
        self.analysis.stats()
    }

    /// The defining formula, when the property was built from one.
    pub fn formula(&self) -> Option<&Formula> {
        self.formula.as_ref()
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        self.automaton().alphabet()
    }

    /// Membership of an ultimately periodic word.
    pub fn contains(&self, word: &Lasso) -> bool {
        self.automaton().accepts(word)
    }

    /// The exact semantic classification (computed once by the shared
    /// [`Analysis`] context, then served from cache).
    pub fn classification(&self) -> Classification {
        self.analysis.classification().clone()
    }

    /// The strictest hierarchy class.
    pub fn class(&self) -> HierarchyClass {
        HierarchyClass::from_classification(&self.classification())
    }

    /// The full report: classification, Borel level, liveness, proof
    /// principle, counter-freedom.
    pub fn report(&self) -> PropertyReport {
        let classification = self.classification();
        let class = HierarchyClass::from_classification(&classification);
        PropertyReport {
            borel: classification.borel_name(),
            syntactic: self.formula.as_ref().and_then(SyntacticClass::of),
            is_liveness: density::is_liveness_ctx(&self.analysis),
            is_uniform_liveness: density::is_uniform_liveness(self.automaton()),
            is_counter_free: self.analysis.counter_freedom().is_counter_free(),
            proof_principle: class.proof_principle(),
            class,
            classification,
        }
    }

    /// The safety–liveness decomposition `Π = Π_S ∩ Π_L` (through the
    /// shared context: the live set behind the closure is computed once).
    pub fn safety_liveness_decomposition(&self) -> (Property, Property) {
        let (s, l) = decomposition::decompose_ctx(&self.analysis);
        (Property::from_automaton(s), Property::from_automaton(l))
    }

    /// Union of two properties (the product is memoized per operand in
    /// this property's context).
    pub fn union(&self, other: &Property) -> Property {
        Property::from_automaton(
            (*self
                .analysis
                .product_with(other.automaton(), ProductOp::Union))
            .clone(),
        )
    }

    /// Intersection of two properties (memoized per operand).
    pub fn intersection(&self, other: &Property) -> Property {
        Property::from_automaton(
            (*self
                .analysis
                .product_with(other.automaton(), ProductOp::Intersection))
            .clone(),
        )
    }

    /// Complement.
    pub fn complement(&self) -> Property {
        Property::from_automaton(self.automaton().complement())
    }

    /// Language equivalence (the forward-inclusion product is memoized).
    pub fn equivalent(&self, other: &Property) -> bool {
        self.analysis.equivalent(other.automaton())
    }

    /// Language inclusion (the difference product is memoized, so
    /// repeated checks against the same operand are cheap).
    pub fn is_subset_of(&self, other: &Property) -> bool {
        self.analysis.is_subset_of(other.automaton())
    }

    /// Whether the counter-freedom test succeeds (the property is
    /// temporal-logic expressible per \[Zuc86]); memoized in the context.
    pub fn counter_freedom(&self) -> CounterFreedom {
        self.analysis.counter_freedom().clone()
    }

    /// A lasso distinguishing this property from `other`, if the languages
    /// differ.
    pub fn distinguishing_word(&self, other: &Property) -> Option<Lasso> {
        self.automaton().distinguishing_lasso(other.automaton())
    }

    /// The property in HOA (Hanoi Omega-Automata) interchange format.
    pub fn to_hoa(&self) -> String {
        hierarchy_automata::hoa::omega_to_hoa(self.automaton())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_lang::witnesses;

    fn props() -> Alphabet {
        Alphabet::of_propositions(["p", "q"]).unwrap()
    }

    #[test]
    fn parse_and_report_response() {
        let sigma = props();
        let p = Property::parse(&sigma, "G (p -> F q)").unwrap();
        let r = p.report();
        assert_eq!(r.class, HierarchyClass::Recurrence);
        assert_eq!(r.borel, "Π₂");
        assert_eq!(r.syntactic, Some(SyntacticClass::Recurrence));
        assert!(r.is_liveness);
        assert!(r.is_counter_free);
        assert!(r.proof_principle.contains("response"));
    }

    #[test]
    fn classes_of_all_witnesses() {
        assert_eq!(
            Property::from_automaton(witnesses::safety()).class(),
            HierarchyClass::Safety
        );
        assert_eq!(
            Property::from_automaton(witnesses::guarantee()).class(),
            HierarchyClass::Guarantee
        );
        assert_eq!(
            Property::from_automaton(witnesses::recurrence()).class(),
            HierarchyClass::Recurrence
        );
        assert_eq!(
            Property::from_automaton(witnesses::persistence()).class(),
            HierarchyClass::Persistence
        );
        assert_eq!(
            Property::from_automaton(witnesses::obligation_witness(3)).class(),
            HierarchyClass::Obligation(3)
        );
        assert_eq!(
            Property::from_automaton(witnesses::reactivity_witness(1)).class(),
            HierarchyClass::SimpleReactivity
        );
        assert_eq!(
            Property::from_automaton(witnesses::reactivity_witness(2)).class(),
            HierarchyClass::Reactivity(2)
        );
        assert_eq!(
            Property::from_automaton(witnesses::guarantee_paper_example()).class(),
            HierarchyClass::Clopen
        );
    }

    #[test]
    fn operator_constructors() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let phi = FinitaryProperty::parse(&sigma, ".*b").unwrap();
        assert_eq!(
            Property::recurrently_of(&phi).class(),
            HierarchyClass::Recurrence
        );
        assert_eq!(
            Property::persistently_of(&phi).class(),
            HierarchyClass::Persistence
        );
        assert_eq!(
            Property::eventually_of(&phi).class(),
            HierarchyClass::Guarantee
        );
        let pref = FinitaryProperty::parse(&sigma, "aa*b*").unwrap();
        assert_eq!(Property::always_of(&pref).class(), HierarchyClass::Safety);
    }

    #[test]
    fn boolean_algebra_and_duality() {
        let r = Property::from_automaton(witnesses::recurrence());
        let c = r.complement();
        assert_eq!(c.class(), HierarchyClass::Persistence);
        assert!(r.union(&c).automaton().is_universal());
        assert!(r.intersection(&c).automaton().is_empty());
        assert!(r.is_subset_of(&r.union(&c)));
        assert!(r.equivalent(&r.complement().complement()));
    }

    #[test]
    fn decomposition_through_property_api() {
        let sigma = props();
        let p = Property::parse(&sigma, "p U q").unwrap();
        let (s, l) = p.safety_liveness_decomposition();
        assert!(matches!(
            s.class(),
            HierarchyClass::Safety | HierarchyClass::Clopen
        ));
        assert!(l.report().is_liveness);
        assert!(s.intersection(&l).equivalent(&p));
    }

    #[test]
    fn membership() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let p = Property::parse(&sigma, "G F b").unwrap();
        assert!(p.contains(&Lasso::parse(&sigma, "", "ab").unwrap()));
        assert!(!p.contains(&Lasso::parse(&sigma, "b", "a").unwrap()));
    }

    #[test]
    fn errors_are_reported() {
        let sigma = props();
        assert!(matches!(
            Property::parse(&sigma, "p U"),
            Err(PropertyError::Parse(_))
        ));
        assert!(matches!(
            Property::parse(&sigma, "G ((F p) U (G q))"),
            Err(PropertyError::Compile(_))
        ));
        let e = Property::parse(&sigma, "p U").unwrap_err();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn display_of_classes() {
        assert_eq!(HierarchyClass::Safety.to_string(), "safety");
        assert_eq!(
            HierarchyClass::Obligation(2).to_string(),
            "obligation (Obl_2)"
        );
        assert_eq!(
            HierarchyClass::Reactivity(3).to_string(),
            "reactivity (level 3)"
        );
    }

    #[test]
    fn proof_principles_cover_all_classes() {
        for c in [
            HierarchyClass::Clopen,
            HierarchyClass::Safety,
            HierarchyClass::Guarantee,
            HierarchyClass::Obligation(1),
            HierarchyClass::Recurrence,
            HierarchyClass::Persistence,
            HierarchyClass::SimpleReactivity,
            HierarchyClass::Reactivity(2),
        ] {
            assert!(!c.proof_principle().is_empty());
        }
    }
}

#[cfg(test)]
mod report_display_tests {
    use super::*;

    #[test]
    fn report_displays_all_sections() {
        let sigma = Alphabet::of_propositions(["p", "q"]).unwrap();
        let p = Property::parse(&sigma, "G (p -> F q)").unwrap();
        let text = p.report().to_string();
        assert!(text.contains("class:"));
        assert!(text.contains("recurrence"));
        assert!(text.contains("Π₂"));
        assert!(text.contains("liveness:        yes"));
        assert!(text.contains("counter-free"));
        assert!(text.contains("proof principle:"));
    }

    #[test]
    fn hoa_and_distinguishing() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let p = Property::parse(&sigma, "G F b").unwrap();
        let q = Property::parse(&sigma, "F G b").unwrap();
        assert!(p.to_hoa().starts_with("HOA: v1"));
        let w = p.distinguishing_word(&q).unwrap();
        assert_ne!(p.contains(&w), q.contains(&w));
        assert!(p.distinguishing_word(&p.clone()).is_none());
    }
}
