//! The [`Servable`] trait: what the classification daemon needs from an
//! artifact — a stable kind tag and a structural content hash.
//!
//! The daemon (`crates/serve`) keys its artifact store by
//! [`ArtifactHash`]; anything that can compute one can be ingested,
//! deduplicated, and queried. Automata and properties hash through the
//! canonical quotient form
//! ([`canonical::structural_hash`](hierarchy_automata::canonical)), so
//! α-equivalent submissions (state renamings, unreachable padding,
//! bisimilar blow-ups) collide on purpose; programs hash their exact
//! structural encoding ([`Program::structural_encoding`]).

use crate::Property;
use hierarchy_automata::canonical::{self, ArtifactHash};
use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_fts::absint::Program;

/// An artifact the classification service can content-address.
pub trait Servable {
    /// A stable kind tag (`"automaton"`, `"program"`, …) — part of the
    /// service's response schema, and the namespace that keeps hashes of
    /// different artifact kinds from colliding.
    fn service_kind(&self) -> &'static str;

    /// The structural content hash (see the module docs for what
    /// collides intentionally per kind).
    fn content_hash(&self) -> ArtifactHash;
}

impl Servable for OmegaAutomaton {
    fn service_kind(&self) -> &'static str {
        "automaton"
    }

    fn content_hash(&self) -> ArtifactHash {
        canonical::structural_hash(self)
    }
}

impl Servable for Property {
    fn service_kind(&self) -> &'static str {
        "automaton"
    }

    /// Hashes the canonical quotient already memoized in the property's
    /// [`Analysis`](hierarchy_automata::analysis::Analysis) context —
    /// the partition refinement is not re-run. A `Property` and the bare
    /// automaton it wraps hash identically (both are automaton-kind
    /// artifacts to the service; formulas and regexes are addressed by
    /// the language they denote, not their syntax).
    fn content_hash(&self) -> ArtifactHash {
        canonical::hash_canonical(&self.analysis().minimization().quotient)
    }
}

impl Servable for Program {
    fn service_kind(&self) -> &'static str {
        "program"
    }

    fn content_hash(&self) -> ArtifactHash {
        canonical::hash_bytes("program", &self.structural_encoding())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;
    use hierarchy_fts::absint;

    #[test]
    fn property_and_automaton_hashes_agree() {
        let sigma = Alphabet::of_propositions(["p", "q"]).unwrap();
        let p = Property::parse(&sigma, "G (p -> F q)").unwrap();
        assert_eq!(p.content_hash(), p.automaton().content_hash());
        assert_eq!(p.service_kind(), "automaton");
    }

    /// Syntactically different formulas denoting the same language are
    /// the same artifact.
    #[test]
    fn alpha_equivalent_formulas_collide() {
        let sigma = Alphabet::of_propositions(["p", "q"]).unwrap();
        let a = Property::parse(&sigma, "G (p -> F q)").unwrap();
        let b = Property::parse(&sigma, "G (F q | !p)").unwrap();
        assert!(a.equivalent(&b), "test premise");
        assert_eq!(a.content_hash(), b.content_hash());
        let c = Property::parse(&sigma, "F G q").unwrap();
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn program_hashes_by_structure() {
        let pete = absint::peterson_abs();
        assert_eq!(pete.service_kind(), "program");
        assert_eq!(pete.content_hash(), absint::peterson_abs().content_hash());
        assert_ne!(
            pete.content_hash(),
            absint::mux_sem_abs(hierarchy_fts::system::Fairness::Strong).content_hash()
        );
        // Program hashes live in a different namespace from automata.
        let sigma = Alphabet::of_propositions(["p"]).unwrap();
        let aut = hierarchy_automata::omega::OmegaAutomaton::universal(&sigma);
        assert_ne!(pete.content_hash(), aut.content_hash());
    }
}
