//! Fair transition systems: explicit states, named transitions, fairness
//! requirements, and per-state observations.

use hierarchy_automata::alphabet::{Alphabet, Symbol};
use std::fmt;

/// The fairness requirement attached to a transition (\[MP83]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fairness {
    /// No requirement.
    None,
    /// Weak fairness (justice): the transition may not be continuously
    /// enabled yet never taken.
    Weak,
    /// Strong fairness (compassion): if enabled infinitely often, the
    /// transition must be taken infinitely often.
    Strong,
}

/// A named transition: a set of edges plus a fairness requirement. The
/// transition is *enabled* in a state iff it has an edge from that state;
/// it is *taken* when one of its edges is used.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Human-readable name (used in counterexamples).
    pub name: String,
    /// The edges `(from, to)` of the transition.
    pub edges: Vec<(usize, usize)>,
    /// The fairness requirement.
    pub fairness: Fairness,
}

/// An explicit-state fair transition system whose states are observed
/// through an alphabet (each state emits one symbol; a computation emits
/// an ω-word).
///
/// # Examples
///
/// ```
/// use hierarchy_automata::prelude::*;
/// use hierarchy_fts::system::{Fairness, TransitionSystem};
///
/// let sigma = Alphabet::new(["n", "c"]).unwrap();
/// let mut ts = TransitionSystem::new(&sigma);
/// let idle = ts.add_state(sigma.symbol("n").unwrap());
/// let crit = ts.add_state(sigma.symbol("c").unwrap());
/// ts.set_initial(idle);
/// ts.add_transition("enter", vec![(idle, crit)], Fairness::Weak);
/// ts.add_transition("leave", vec![(crit, idle)], Fairness::Weak);
/// ts.add_transition("stay", vec![(idle, idle), (crit, crit)], Fairness::None);
/// assert!(ts.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct TransitionSystem {
    alphabet: Alphabet,
    observations: Vec<Symbol>,
    initial: Vec<usize>,
    transitions: Vec<Transition>,
}

/// A validation problem in a transition system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SystemError {
    /// No initial state was declared.
    NoInitialState,
    /// Some state has no outgoing edge, so computations could deadlock;
    /// add an idling transition if this is intended.
    Deadlock {
        /// The stuck state.
        state: usize,
    },
    /// A transition references a state that does not exist.
    UnknownState {
        /// The transition name.
        transition: String,
        /// The offending state index.
        state: usize,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::NoInitialState => write!(f, "no initial state declared"),
            SystemError::Deadlock { state } => {
                write!(f, "state {state} has no outgoing edge (deadlock)")
            }
            SystemError::UnknownState { transition, state } => {
                write!(
                    f,
                    "transition {transition:?} references unknown state {state}"
                )
            }
        }
    }
}

impl std::error::Error for SystemError {}

impl TransitionSystem {
    /// Creates an empty system observed through `alphabet`.
    pub fn new(alphabet: &Alphabet) -> Self {
        TransitionSystem {
            alphabet: alphabet.clone(),
            observations: Vec::new(),
            initial: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// The observation alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Adds a state emitting `observation`; returns its index.
    pub fn add_state(&mut self, observation: Symbol) -> usize {
        self.observations.push(observation);
        self.observations.len() - 1
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.observations.len()
    }

    /// The observation of a state.
    pub fn observation(&self, state: usize) -> Symbol {
        self.observations[state]
    }

    /// Declares an initial state.
    pub fn set_initial(&mut self, state: usize) {
        if !self.initial.contains(&state) {
            self.initial.push(state);
        }
    }

    /// The initial states.
    pub fn initial_states(&self) -> &[usize] {
        &self.initial
    }

    /// Adds a named transition; returns its index.
    pub fn add_transition(
        &mut self,
        name: impl Into<String>,
        edges: Vec<(usize, usize)>,
        fairness: Fairness,
    ) -> usize {
        self.transitions.push(Transition {
            name: name.into(),
            edges,
            fairness,
        });
        self.transitions.len() - 1
    }

    /// The transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Whether transition `t` is enabled in `state`.
    pub fn enabled(&self, t: usize, state: usize) -> bool {
        self.transitions[t]
            .edges
            .iter()
            .any(|&(from, _)| from == state)
    }

    /// All successor states of `state` (over all transitions).
    pub fn successors(&self, state: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for t in &self.transitions {
            for &(from, to) in &t.edges {
                if from == state && !out.contains(&to) {
                    out.push(to);
                }
            }
        }
        out
    }

    /// Validates the system: at least one initial state, no deadlocks, no
    /// dangling state references.
    ///
    /// # Errors
    ///
    /// Returns the first [`SystemError`] found.
    pub fn validate(&self) -> Result<(), SystemError> {
        if self.initial.is_empty() {
            return Err(SystemError::NoInitialState);
        }
        for t in &self.transitions {
            for &(from, to) in &t.edges {
                for s in [from, to] {
                    if s >= self.num_states() {
                        return Err(SystemError::UnknownState {
                            transition: t.name.clone(),
                            state: s,
                        });
                    }
                }
            }
        }
        // Deadlock freedom over the reachable part.
        let mut seen = vec![false; self.num_states()];
        let mut stack: Vec<usize> = self.initial.clone();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            let succs = self.successors(s);
            if succs.is_empty() {
                return Err(SystemError::Deadlock { state: s });
            }
            for n in succs {
                if !seen[n] {
                    seen[n] = true;
                    stack.push(n);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma() -> Alphabet {
        Alphabet::new(["n", "c"]).unwrap()
    }

    fn two_state() -> TransitionSystem {
        let a = sigma();
        let mut ts = TransitionSystem::new(&a);
        let s0 = ts.add_state(a.symbol("n").unwrap());
        let s1 = ts.add_state(a.symbol("c").unwrap());
        ts.set_initial(s0);
        ts.add_transition("go", vec![(s0, s1)], Fairness::Weak);
        ts.add_transition("back", vec![(s1, s0)], Fairness::None);
        ts
    }

    #[test]
    fn build_and_query() {
        let ts = two_state();
        assert_eq!(ts.num_states(), 2);
        assert!(ts.enabled(0, 0));
        assert!(!ts.enabled(0, 1));
        assert_eq!(ts.successors(0), vec![1]);
        assert_eq!(ts.initial_states(), &[0]);
        assert!(ts.validate().is_ok());
    }

    #[test]
    fn validation_catches_no_initial() {
        let a = sigma();
        let mut ts = TransitionSystem::new(&a);
        ts.add_state(a.symbol("n").unwrap());
        assert_eq!(ts.validate(), Err(SystemError::NoInitialState));
    }

    #[test]
    fn validation_catches_deadlock() {
        let a = sigma();
        let mut ts = TransitionSystem::new(&a);
        let s0 = ts.add_state(a.symbol("n").unwrap());
        let s1 = ts.add_state(a.symbol("c").unwrap());
        ts.set_initial(s0);
        ts.add_transition("go", vec![(s0, s1)], Fairness::None);
        assert_eq!(ts.validate(), Err(SystemError::Deadlock { state: s1 }));
    }

    #[test]
    fn validation_catches_unknown_state() {
        let a = sigma();
        let mut ts = TransitionSystem::new(&a);
        let s0 = ts.add_state(a.symbol("n").unwrap());
        ts.set_initial(s0);
        ts.add_transition("bad", vec![(s0, 7)], Fairness::None);
        assert!(matches!(
            ts.validate(),
            Err(SystemError::UnknownState { state: 7, .. })
        ));
    }

    #[test]
    fn unreachable_deadlock_is_fine() {
        let a = sigma();
        let mut ts = TransitionSystem::new(&a);
        let s0 = ts.add_state(a.symbol("n").unwrap());
        let _dead = ts.add_state(a.symbol("c").unwrap());
        ts.set_initial(s0);
        ts.add_transition("loop", vec![(s0, s0)], Fairness::None);
        assert!(ts.validate().is_ok());
    }
}
