//! The paper's example programs as fair transition systems.
//!
//! * [`peterson`] — Peterson's two-process mutual-exclusion algorithm.
//!   Under weak fairness it satisfies both the safety requirement
//!   `□¬(C₁ ∧ C₂)` and the accessibility requirement `□(Tᵢ → ◇Cᵢ)`.
//! * [`mux_sem`] — the semaphore-based mutual exclusion of \[MP83]: the
//!   grant transitions need **strong** fairness for accessibility; weak
//!   fairness admits starvation (which is why strong fairness lives in the
//!   simple-reactivity class).

use crate::system::{Fairness, TransitionSystem};
use hierarchy_automata::alphabet::Alphabet;

/// The observation alphabet of both programs: valuations of
/// `[c1, c2, t1, t2]` (critical / trying, per process).
pub fn observation_alphabet() -> Alphabet {
    Alphabet::of_propositions(["c1", "c2", "t1", "t2"]).expect("valid proposition set")
}

/// Peterson's mutual-exclusion algorithm for two processes.
///
/// Process `i` moves through `N → (set flagᵢ) → (set turn) → wait → C → N`;
/// requesting is optional (no fairness on the request transition), every
/// other step is weakly fair.
pub fn peterson() -> (TransitionSystem, Alphabet) {
    let sigma = observation_alphabet();
    // State encoding: pc1, pc2 ∈ {0:N, 1:flag set, 2:waiting, 3:C},
    // tb ∈ {0: turn=1, 1: turn=2}; id = pc1 + 4*pc2 + 16*tb.
    let id = |pc1: usize, pc2: usize, tb: usize| pc1 + 4 * pc2 + 16 * tb;
    let mut ts = TransitionSystem::new(&sigma);
    for tb in 0..2 {
        for pc2 in 0..4 {
            for pc1 in 0..4 {
                // Iteration order must match the id encoding: pc1 fastest.
                let trying = |pc: usize| pc == 1 || pc == 2;
                let s = ts.add_state(sigma.valuation_symbol(&[
                    pc1 == 3,
                    pc2 == 3,
                    trying(pc1),
                    trying(pc2),
                ]));
                debug_assert_eq!(s, id(pc1, pc2, tb));
            }
        }
    }
    ts.set_initial(id(0, 0, 0));

    let all = |f: &mut dyn FnMut(usize, usize, usize) -> Option<(usize, usize)>| {
        let mut edges = Vec::new();
        for tb in 0..2 {
            for pc2 in 0..4 {
                for pc1 in 0..4 {
                    if let Some((from, to)) = f(pc1, pc2, tb) {
                        edges.push((from, to));
                    }
                }
            }
        }
        edges
    };

    // Process 1.
    let req1 = all(&mut |pc1, pc2, tb| (pc1 == 0).then(|| (id(0, pc2, tb), id(1, pc2, tb))));
    ts.add_transition("req1", req1, Fairness::None);
    let turn1 = all(&mut |pc1, pc2, tb| (pc1 == 1).then(|| (id(1, pc2, tb), id(2, pc2, 1))));
    ts.add_transition("set_turn1", turn1, Fairness::Weak);
    let enter1 = all(&mut |pc1, pc2, tb| {
        (pc1 == 2 && (pc2 == 0 || tb == 0)).then(|| (id(2, pc2, tb), id(3, pc2, tb)))
    });
    ts.add_transition("enter1", enter1, Fairness::Weak);
    let exit1 = all(&mut |pc1, pc2, tb| (pc1 == 3).then(|| (id(3, pc2, tb), id(0, pc2, tb))));
    ts.add_transition("exit1", exit1, Fairness::Weak);

    // Process 2 (symmetric; set_turn2 gives priority to process 1).
    let req2 = all(&mut |pc1, pc2, tb| (pc2 == 0).then(|| (id(pc1, 0, tb), id(pc1, 1, tb))));
    ts.add_transition("req2", req2, Fairness::None);
    let turn2 = all(&mut |pc1, pc2, tb| (pc2 == 1).then(|| (id(pc1, 1, tb), id(pc1, 2, 0))));
    ts.add_transition("set_turn2", turn2, Fairness::Weak);
    let enter2 = all(&mut |pc1, pc2, tb| {
        (pc2 == 2 && (pc1 == 0 || tb == 1)).then(|| (id(pc1, 2, tb), id(pc1, 3, tb)))
    });
    ts.add_transition("enter2", enter2, Fairness::Weak);
    let exit2 = all(&mut |pc1, pc2, tb| (pc2 == 3).then(|| (id(pc1, 3, tb), id(pc1, 0, tb))));
    ts.add_transition("exit2", exit2, Fairness::Weak);

    // Idling (both processes may pause anywhere).
    let idle = all(&mut |pc1, pc2, tb| Some((id(pc1, pc2, tb), id(pc1, pc2, tb))));
    ts.add_transition("idle", idle, Fairness::None);

    (ts, sigma)
}

/// Semaphore-based mutual exclusion (`MUX-SEM`): two processes
/// `N → T → C → N` competing for one semaphore. The grant transitions get
/// the supplied fairness: with [`Fairness::Strong`] accessibility holds;
/// with [`Fairness::Weak`] process starvation is a fair computation.
pub fn mux_sem(grant_fairness: Fairness) -> (TransitionSystem, Alphabet) {
    let sigma = observation_alphabet();
    // pc ∈ {0:N, 1:T, 2:C}; at most one process in C (the semaphore).
    let id = |pc1: usize, pc2: usize| pc1 * 3 + pc2;
    let mut ts = TransitionSystem::new(&sigma);
    for pc1 in 0..3 {
        for pc2 in 0..3 {
            let s = ts.add_state(sigma.valuation_symbol(&[pc1 == 2, pc2 == 2, pc1 == 1, pc2 == 1]));
            debug_assert_eq!(s, id(pc1, pc2));
        }
    }
    ts.set_initial(id(0, 0));
    let edges = |f: &mut dyn FnMut(usize, usize) -> Option<(usize, usize)>| {
        let mut out = Vec::new();
        for pc1 in 0..3 {
            for pc2 in 0..3 {
                if let Some(e) = f(pc1, pc2) {
                    out.push(e);
                }
            }
        }
        out
    };
    let req1 = edges(&mut |pc1, pc2| (pc1 == 0).then(|| (id(0, pc2), id(1, pc2))));
    ts.add_transition("req1", req1, Fairness::None);
    let req2 = edges(&mut |pc1, pc2| (pc2 == 0).then(|| (id(pc1, 0), id(pc1, 1))));
    ts.add_transition("req2", req2, Fairness::None);
    // Grants require the semaphore to be free (no process in C).
    let grant1 = edges(&mut |pc1, pc2| (pc1 == 1 && pc2 != 2).then(|| (id(1, pc2), id(2, pc2))));
    ts.add_transition("grant1", grant1, grant_fairness);
    let grant2 = edges(&mut |pc1, pc2| (pc2 == 1 && pc1 != 2).then(|| (id(pc1, 1), id(pc1, 2))));
    ts.add_transition("grant2", grant2, grant_fairness);
    let rel1 = edges(&mut |pc1, pc2| (pc1 == 2).then(|| (id(2, pc2), id(0, pc2))));
    ts.add_transition("release1", rel1, Fairness::Weak);
    let rel2 = edges(&mut |pc1, pc2| (pc2 == 2).then(|| (id(pc1, 2), id(pc1, 0))));
    ts.add_transition("release2", rel2, Fairness::Weak);
    let idle = edges(&mut |pc1, pc2| Some((id(pc1, pc2), id(pc1, pc2))));
    ts.add_transition("idle", idle, Fairness::None);
    (ts, sigma)
}

/// A token ring of three processes: the token moves `0 → 1 → 2 → 0`, and
/// the holder may use it (observed through `c1`/`c2` for processes 0/1 —
/// process 2 is unobserved, keeping the shared observation alphabet).
///
/// With weak fairness on the pass transitions every process holds the
/// token infinitely often (`□◇` recurrence properties); without fairness
/// the token can sit at one process forever.
pub fn token_ring(fair_pass: bool) -> (TransitionSystem, Alphabet) {
    let sigma = observation_alphabet();
    // State = token position ∈ {0,1,2}.
    let mut ts = TransitionSystem::new(&sigma);
    for pos in 0..3usize {
        let s = ts.add_state(sigma.valuation_symbol(&[pos == 0, pos == 1, false, false]));
        debug_assert_eq!(s, pos);
    }
    ts.set_initial(0);
    let fairness = if fair_pass {
        Fairness::Weak
    } else {
        Fairness::None
    };
    ts.add_transition("pass0", vec![(0, 1)], fairness);
    ts.add_transition("pass1", vec![(1, 2)], fairness);
    ts.add_transition("pass2", vec![(2, 0)], fairness);
    ts.add_transition("hold", vec![(0, 0), (1, 1), (2, 2)], Fairness::None);
    (ts, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{verify, Verdict};
    use hierarchy_logic::to_automaton::compile_over;
    use hierarchy_logic::Formula;

    fn spec(sigma: &Alphabet, src: &str) -> hierarchy_automata::omega::OmegaAutomaton {
        compile_over(sigma, &Formula::parse(sigma, src).unwrap()).unwrap()
    }

    #[test]
    fn peterson_is_valid_system() {
        let (ts, _) = peterson();
        assert!(ts.validate().is_ok());
        assert_eq!(ts.num_states(), 32);
    }

    #[test]
    fn peterson_mutual_exclusion() {
        let (ts, sigma) = peterson();
        // The paper's safety requirement □¬(in_C1 ∧ in_C2).
        assert!(verify(&ts, &spec(&sigma, "G !(c1 & c2)"))
            .expect("check")
            .holds());
    }

    #[test]
    fn peterson_accessibility() {
        let (ts, sigma) = peterson();
        // The paper's response requirement □(in_Ti → ◇in_Ci).
        assert!(verify(&ts, &spec(&sigma, "G (t1 -> F c1)"))
            .expect("check")
            .holds());
        assert!(verify(&ts, &spec(&sigma, "G (t2 -> F c2)"))
            .expect("check")
            .holds());
    }

    #[test]
    fn peterson_precedence() {
        let (ts, sigma) = peterson();
        // Entering the critical section requires having tried: □(c1 → ⟐t1).
        assert!(verify(&ts, &spec(&sigma, "G (c1 -> O t1)"))
            .expect("check")
            .holds());
        // But the converse guarantee ◇c1 alone is false (the process may
        // never request).
        assert!(!verify(&ts, &spec(&sigma, "F c1")).expect("check").holds());
    }

    #[test]
    fn mux_sem_strong_vs_weak() {
        // Strong fairness: accessibility for both processes.
        let (ts, sigma) = mux_sem(Fairness::Strong);
        assert!(ts.validate().is_ok());
        assert!(verify(&ts, &spec(&sigma, "G (t1 -> F c1)"))
            .expect("check")
            .holds());
        assert!(verify(&ts, &spec(&sigma, "G (t2 -> F c2)"))
            .expect("check")
            .holds());
        // Weak fairness: process 2 can starve while process 1 cycles.
        let (ts, sigma) = mux_sem(Fairness::Weak);
        let v = verify(&ts, &spec(&sigma, "G (t2 -> F c2)")).expect("check");
        match v {
            Verdict::Violated(cex) => {
                // In the starvation loop process 2 stays trying (pc2 = 1).
                assert!(cex.cycle.iter().all(|&s| s % 3 == 1));
            }
            Verdict::Holds => panic!("weak fairness should admit starvation"),
        }
        // Mutual exclusion holds regardless.
        assert!(verify(&ts, &spec(&sigma, "G !(c1 & c2)"))
            .expect("check")
            .holds());
    }

    #[test]
    fn token_ring_recurrence() {
        let (ts, sigma) = token_ring(true);
        assert!(ts.validate().is_ok());
        // Everyone holds the token infinitely often.
        assert!(verify(&ts, &spec(&sigma, "G F c1")).expect("check").holds());
        assert!(verify(&ts, &spec(&sigma, "G F c2")).expect("check").holds());
        // The holders alternate: c1 and c2 never coincide.
        assert!(verify(&ts, &spec(&sigma, "G !(c1 & c2)"))
            .expect("check")
            .holds());
        // Without fairness the token can stall.
        let (stalled, sigma) = token_ring(false);
        assert!(!verify(&stalled, &spec(&sigma, "G F c2"))
            .expect("check")
            .holds());
    }

    #[test]
    fn fairness_requirement_formulas() {
        // The paper's fairness *formulas* hold of the fair computations by
        // construction: weak fairness of `enter1` in Peterson as the
        // recurrence formula □◇(¬enabled ∨ taken) is reflected by
        // accessibility already; here we check the strong-fairness-style
        // reactivity formula □◇t1 → □◇c1 on MUX-SEM with strong grants.
        let (ts, sigma) = mux_sem(Fairness::Strong);
        assert!(verify(&ts, &spec(&sigma, "G F t1 -> G F c1"))
            .expect("check")
            .holds());
    }
}
