//! The paper's example programs in the declarative IR, plus a seeded
//! random-program generator for differential testing.
//!
//! Each example mirrors its closure-based counterpart in
//! [`programs`](crate::programs) (same variables, guards, fairness and
//! observations), so `Program::to_builder(..).build()` reproduces the
//! explicit system and the abstract engine gets a transparent view of the
//! same semantics. All three use their first program counter as the
//! analysis `pc`, which is what lets the cartesian domains prove
//! mutual exclusion (the grant/enter guard refinement survives the
//! location partition).

use super::ir::{Branch, Expr, Guard, Program};
use crate::system::Fairness;
use hierarchy_automata::random::rng::{Rng, StdRng};

fn set(var: usize, value: i64) -> Branch {
    Branch::assign(vec![(var, Expr::c(value))])
}

/// `MUX-SEM` (semaphore mutual exclusion) as a declarative program:
/// `pc1, pc2 ∈ {0:N, 1:T, 2:C}`, grants with the supplied fairness.
/// Matches [`programs::mux_sem`](crate::programs::mux_sem) over the
/// `[c1, c2, t1, t2]` observation alphabet.
pub fn mux_sem_abs(grant_fairness: Fairness) -> Program {
    let mut p = Program::new();
    let pc1 = p.var("pc1", 3);
    let pc2 = p.var("pc2", 3);
    p.set_pc(pc1);
    p.init(&[0, 0]);
    p.observe_prop(Guard::var_eq(pc1, 2)); // c1
    p.observe_prop(Guard::var_eq(pc2, 2)); // c2
    p.observe_prop(Guard::var_eq(pc1, 1)); // t1
    p.observe_prop(Guard::var_eq(pc2, 1)); // t2
    p.command(
        "req1",
        Fairness::None,
        Guard::var_eq(pc1, 0),
        vec![set(pc1, 1)],
    );
    p.command(
        "req2",
        Fairness::None,
        Guard::var_eq(pc2, 0),
        vec![set(pc2, 1)],
    );
    p.command(
        "grant1",
        grant_fairness,
        Guard::var_eq(pc1, 1).and(Guard::var_ne(pc2, 2)),
        vec![set(pc1, 2)],
    );
    p.command(
        "grant2",
        grant_fairness,
        Guard::var_eq(pc2, 1).and(Guard::var_ne(pc1, 2)),
        vec![set(pc2, 2)],
    );
    p.command(
        "release1",
        Fairness::Weak,
        Guard::var_eq(pc1, 2),
        vec![set(pc1, 0)],
    );
    p.command(
        "release2",
        Fairness::Weak,
        Guard::var_eq(pc2, 2),
        vec![set(pc2, 0)],
    );
    p.command("idle", Fairness::None, Guard::True, vec![Branch::skip()]);
    p
}

/// The three-process token ring as a declarative program: one position
/// variable, three pass commands (fair when `fair_pass`) and a hold.
/// Matches [`programs::token_ring`](crate::programs::token_ring).
pub fn token_ring_abs(fair_pass: bool) -> Program {
    let fairness = if fair_pass {
        Fairness::Weak
    } else {
        Fairness::None
    };
    let mut p = Program::new();
    let pos = p.var("pos", 3);
    p.set_pc(pos);
    p.init(&[0]);
    p.observe_prop(Guard::var_eq(pos, 0)); // c1
    p.observe_prop(Guard::var_eq(pos, 1)); // c2
    p.observe_prop(Guard::False); // t1 (unobserved)
    p.observe_prop(Guard::False); // t2 (unobserved)
    for i in 0..3i64 {
        p.command(
            format!("pass{i}"),
            fairness,
            Guard::var_eq(pos, i),
            vec![set(pos, (i + 1) % 3)],
        );
    }
    p.command("hold", Fairness::None, Guard::True, vec![Branch::skip()]);
    p
}

/// Peterson's algorithm as a declarative program: `pc1, pc2 ∈ {0:N,
/// 1:flag set, 2:waiting, 3:C}`, `tb ∈ {0: turn=1, 1: turn=2}`. Matches
/// [`programs::peterson`](crate::programs::peterson). Its mutual
/// exclusion needs the `tb`/`pc2` correlation, which the cartesian
/// domains cannot express — the honest fallback case for the checker.
pub fn peterson_abs() -> Program {
    let mut p = Program::new();
    let pc1 = p.var("pc1", 4);
    let pc2 = p.var("pc2", 4);
    let tb = p.var("tb", 2);
    p.set_pc(pc1);
    p.init(&[0, 0, 0]);
    let trying = |pc: usize| Guard::var_eq(pc, 1).or(Guard::var_eq(pc, 2));
    p.observe_prop(Guard::var_eq(pc1, 3)); // c1
    p.observe_prop(Guard::var_eq(pc2, 3)); // c2
    p.observe_prop(trying(pc1)); // t1
    p.observe_prop(trying(pc2)); // t2
    p.command(
        "req1",
        Fairness::None,
        Guard::var_eq(pc1, 0),
        vec![set(pc1, 1)],
    );
    p.command(
        "set_turn1",
        Fairness::Weak,
        Guard::var_eq(pc1, 1),
        vec![Branch::assign(vec![(pc1, Expr::c(2)), (tb, Expr::c(1))])],
    );
    p.command(
        "enter1",
        Fairness::Weak,
        Guard::var_eq(pc1, 2).and(Guard::var_eq(pc2, 0).or(Guard::var_eq(tb, 0))),
        vec![set(pc1, 3)],
    );
    p.command(
        "exit1",
        Fairness::Weak,
        Guard::var_eq(pc1, 3),
        vec![set(pc1, 0)],
    );
    p.command(
        "req2",
        Fairness::None,
        Guard::var_eq(pc2, 0),
        vec![set(pc2, 1)],
    );
    p.command(
        "set_turn2",
        Fairness::Weak,
        Guard::var_eq(pc2, 1),
        vec![Branch::assign(vec![(pc2, Expr::c(2)), (tb, Expr::c(0))])],
    );
    p.command(
        "enter2",
        Fairness::Weak,
        Guard::var_eq(pc2, 2).and(Guard::var_eq(pc1, 0).or(Guard::var_eq(tb, 1))),
        vec![set(pc2, 3)],
    );
    p.command(
        "exit2",
        Fairness::Weak,
        Guard::var_eq(pc2, 3),
        vec![set(pc2, 0)],
    );
    p.command("idle", Fairness::None, Guard::True, vec![Branch::skip()]);
    p
}

/// `MUX-SEM` generalized to `n ≥ 2` processes: `pc_i ∈ {0:N, 1:T, 2:C}`
/// for each process, the grant guard excluding every other process from
/// the critical section. The observation alphabet stays `[c1, c2, t1,
/// t2]` over the first two processes, so the same specifications apply
/// at every `n`. The explicit product has `3^n` valuations while the
/// abstract analysis keeps `3` locations — the states-vs-N crossover
/// family where the *cartesian* value sets still suffice (the grant
/// guard's refinement survives the pc partition).
pub fn mux_sem_n(n: usize) -> Program {
    assert!(n >= 2, "mux_sem_n needs at least two processes");
    let mut p = Program::new();
    let pcs: Vec<usize> = (0..n).map(|i| p.var(format!("pc{i}"), 3)).collect();
    p.set_pc(pcs[0]);
    p.init(&vec![0; n]);
    p.observe_prop(Guard::var_eq(pcs[0], 2)); // c1
    p.observe_prop(Guard::var_eq(pcs[1], 2)); // c2
    p.observe_prop(Guard::var_eq(pcs[0], 1)); // t1
    p.observe_prop(Guard::var_eq(pcs[1], 1)); // t2
    for i in 0..n {
        p.command(
            format!("req{i}"),
            Fairness::None,
            Guard::var_eq(pcs[i], 0),
            vec![set(pcs[i], 1)],
        );
        let mut grant = Guard::var_eq(pcs[i], 1);
        for (j, &pcj) in pcs.iter().enumerate() {
            if j != i {
                grant = grant.and(Guard::var_ne(pcj, 2));
            }
        }
        p.command(
            format!("grant{i}"),
            Fairness::Strong,
            grant,
            vec![set(pcs[i], 2)],
        );
        p.command(
            format!("release{i}"),
            Fairness::Weak,
            Guard::var_eq(pcs[i], 2),
            vec![set(pcs[i], 0)],
        );
    }
    p.command("idle", Fairness::None, Guard::True, vec![Branch::skip()]);
    p
}

/// An `n`-process token ring over **distributed** token bits: `tok_i ∈
/// {0, 1}`, initially only `tok_0` set, `pass_i` moving the token one
/// seat around the ring. Unlike [`token_ring_abs`] (one position
/// variable), the single-token invariant here is a *correlation* between
/// variables — `tok_i = 1` excludes `tok_j = 1` — which the cartesian
/// domains provably lose and the relational domain keeps, making this
/// the family whose mutual exclusion discharges statically only
/// relationally. Observations: `c1 = tok_0`, `c2 = tok_1`.
pub fn token_ring_n(n: usize) -> Program {
    assert!(n >= 2, "token_ring_n needs at least two seats");
    let mut p = Program::new();
    let toks: Vec<usize> = (0..n).map(|i| p.var(format!("tok{i}"), 2)).collect();
    p.set_pc(toks[0]);
    let mut init = vec![0; n];
    init[0] = 1;
    p.init(&init);
    p.observe_prop(Guard::var_eq(toks[0], 1)); // c1
    p.observe_prop(Guard::var_eq(toks[1], 1)); // c2
    p.observe_prop(Guard::False); // t1 (unobserved)
    p.observe_prop(Guard::False); // t2 (unobserved)
    for i in 0..n {
        let j = (i + 1) % n;
        p.command(
            format!("pass{i}"),
            Fairness::Weak,
            Guard::var_eq(toks[i], 1),
            vec![Branch::assign(vec![
                (toks[i], Expr::c(0)),
                (toks[j], Expr::c(1)),
            ])],
        );
    }
    p.command("hold", Fairness::None, Guard::True, vec![Branch::skip()]);
    p
}

/// `n` dining philosophers with explicit fork bits: `p_i ∈ {0:thinking,
/// 1:holds left fork, 2:eating}` and `f_i ∈ {0:free, 1:taken}`,
/// philosopher `i` using forks `i` (left) and `(i+1) mod n` (right).
/// The safety invariants — `p_i ≥ 1 ⇒ f_i = 1` and `p_i = 2 ⇒
/// f_{i+1} = 1`, hence neighbours never eat together — are again pure
/// correlations, relational-only. Observations: `c1/c2` = philosophers
/// 0/1 eating, `t1/t2` = holding their left fork.
pub fn dining_philosophers(n: usize) -> Program {
    assert!(n >= 2, "dining_philosophers needs at least two seats");
    let mut p = Program::new();
    let ps: Vec<usize> = (0..n).map(|i| p.var(format!("p{i}"), 3)).collect();
    let fs: Vec<usize> = (0..n).map(|i| p.var(format!("f{i}"), 2)).collect();
    p.set_pc(ps[0]);
    p.init(&vec![0; 2 * n]);
    p.observe_prop(Guard::var_eq(ps[0], 2)); // c1
    p.observe_prop(Guard::var_eq(ps[1], 2)); // c2
    p.observe_prop(Guard::var_eq(ps[0], 1)); // t1
    p.observe_prop(Guard::var_eq(ps[1], 1)); // t2
    for i in 0..n {
        let left = fs[i];
        let right = fs[(i + 1) % n];
        p.command(
            format!("take_left{i}"),
            Fairness::Weak,
            Guard::var_eq(ps[i], 0).and(Guard::var_eq(left, 0)),
            vec![Branch::assign(vec![
                (ps[i], Expr::c(1)),
                (left, Expr::c(1)),
            ])],
        );
        p.command(
            format!("take_right{i}"),
            Fairness::Weak,
            Guard::var_eq(ps[i], 1).and(Guard::var_eq(right, 0)),
            vec![Branch::assign(vec![
                (ps[i], Expr::c(2)),
                (right, Expr::c(1)),
            ])],
        );
        p.command(
            format!("put{i}"),
            Fairness::Weak,
            Guard::var_eq(ps[i], 2),
            vec![Branch::assign(vec![
                (ps[i], Expr::c(0)),
                (left, Expr::c(0)),
                (right, Expr::c(0)),
            ])],
        );
    }
    p.command("idle", Fairness::None, Guard::True, vec![Branch::skip()]);
    p
}

fn random_atom(rng: &mut StdRng, domains: &[usize]) -> Guard {
    let x = rng.gen_range(0..domains.len());
    let k = rng.gen_range(0..domains[x]) as i64;
    let op = match rng.gen_range(0..6) {
        0 => super::ir::Cmp::Eq,
        1 => super::ir::Cmp::Ne,
        2 => super::ir::Cmp::Lt,
        3 => super::ir::Cmp::Le,
        4 => super::ir::Cmp::Gt,
        _ => super::ir::Cmp::Ge,
    };
    Guard::Cmp(op, Expr::v(x), Expr::c(k))
}

fn random_expr(rng: &mut StdRng, domains: &[usize]) -> Expr {
    let x = rng.gen_range(0..domains.len());
    match rng.gen_range(0..4) {
        0 => Expr::c(rng.gen_range(0..4) as i64),
        1 => Expr::v(x),
        2 => Expr::v(x).add(Expr::c(rng.gen_range(1..3) as i64)),
        _ => {
            let y = rng.gen_range(0..domains.len());
            Expr::v(x).add(Expr::v(y))
        }
    }
}

/// A seeded random program over the propositions `[p0, p1]`: 2–3
/// variables with domains of 2–4 values, 3–5 guarded commands (plus an
/// always-enabled idle so the built system never deadlocks), random
/// fairness, and assignments wrapped in `Mod` so every result stays
/// in-domain. Half the programs are flow-sensitive (`pc` = variable 0).
pub fn random_program(rng: &mut StdRng) -> Program {
    let mut p = Program::new();
    let nvars = rng.gen_range(2..=3);
    for i in 0..nvars {
        p.var(format!("v{i}"), rng.gen_range(2..=4));
    }
    let domains = p.domains.clone();
    if rng.gen_bool(0.5) {
        p.set_pc(0);
    }
    let init: Vec<usize> = domains.iter().map(|&d| rng.gen_range(0..d)).collect();
    p.init(&init);
    p.observe_prop(random_atom(rng, &domains)); // p0
    p.observe_prop(random_atom(rng, &domains)); // p1
    let ncmds = rng.gen_range(3..=5);
    for c in 0..ncmds {
        let mut guard = random_atom(rng, &domains);
        if rng.gen_bool(0.4) {
            let other = random_atom(rng, &domains);
            guard = if rng.gen_bool(0.5) {
                guard.and(other)
            } else {
                guard.or(other)
            };
        }
        let nbranches = rng.gen_range(1..=2);
        let mut branches = Vec::new();
        for _ in 0..nbranches {
            let nassigns = rng.gen_range(1..=2.min(nvars));
            let mut assigns = Vec::new();
            let mut used = vec![false; nvars];
            for _ in 0..nassigns {
                let x = rng.gen_range(0..nvars);
                if used[x] {
                    continue;
                }
                used[x] = true;
                let e = random_expr(rng, &domains).modulo(domains[x] as u64);
                assigns.push((x, e));
            }
            branches.push(Branch::assign(assigns));
        }
        let fairness = match rng.gen_range(0..4) {
            0 => Fairness::None,
            1 => Fairness::Strong,
            _ => Fairness::Weak,
        };
        p.command(format!("c{c}"), fairness, guard, branches);
    }
    p.command("idle", Fairness::None, Guard::True, vec![Branch::skip()]);
    p
}

/// The named example catalogue shared by `spec-lint program` and the
/// classification daemon's `ingest {"kind": "program"}` endpoint: every
/// built-in program with its stable lookup name, all over the
/// `[c1, c2, t1, t2]` observation alphabet
/// ([`programs::observation_alphabet`](crate::programs::observation_alphabet)).
pub fn catalogue() -> Vec<(&'static str, Program)> {
    vec![
        ("peterson", peterson_abs()),
        ("mux-sem", mux_sem_abs(Fairness::Strong)),
        ("mux-sem-weak", mux_sem_abs(Fairness::Weak)),
        ("token-ring", token_ring_abs(true)),
        ("token-ring-stalled", token_ring_abs(false)),
        ("mux-sem-n4", mux_sem_n(4)),
        ("token-ring-n4", token_ring_n(4)),
        ("dining-phil-3", dining_philosophers(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::verify;
    use crate::programs;
    use hierarchy_automata::random::rng::SeedableRng;
    use hierarchy_logic::to_automaton::compile_over;
    use hierarchy_logic::Formula;

    #[test]
    fn abs_examples_reproduce_explicit_verdicts() {
        let sigma = programs::observation_alphabet();
        let cases: [(&str, Program, crate::system::TransitionSystem); 4] = [
            (
                "mux_strong",
                mux_sem_abs(Fairness::Strong),
                programs::mux_sem(Fairness::Strong).0,
            ),
            (
                "mux_weak",
                mux_sem_abs(Fairness::Weak),
                programs::mux_sem(Fairness::Weak).0,
            ),
            (
                "token_ring",
                token_ring_abs(true),
                programs::token_ring(true).0,
            ),
            ("peterson", peterson_abs(), programs::peterson().0),
        ];
        for (name, prog, explicit) in cases {
            prog.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            // The explicit systems enumerate every valuation (reachable
            // or not); the builder interns only reachable ones — so
            // compare verdicts, not state counts.
            let built = prog.to_builder(&sigma).build().expect(name);
            for src in ["G !(c1 & c2)", "G (t1 -> F c1)", "G F c1"] {
                let prop = compile_over(&sigma, &Formula::parse(&sigma, src).unwrap()).unwrap();
                assert_eq!(
                    verify(&built, &prop).expect("check").holds(),
                    verify(&explicit, &prop).expect("check").holds(),
                    "{name}: {src}"
                );
            }
        }
    }

    #[test]
    fn n_families_validate_and_satisfy_mutex() {
        let sigma = programs::observation_alphabet();
        let mutex = compile_over(&sigma, &Formula::parse(&sigma, "G !(c1 & c2)").unwrap()).unwrap();
        for n in 2..=4 {
            for (name, prog) in [
                ("mux_sem_n", mux_sem_n(n)),
                ("token_ring_n", token_ring_n(n)),
                ("dining_philosophers", dining_philosophers(n)),
            ] {
                prog.validate()
                    .unwrap_or_else(|e| panic!("{name}({n}): {e}"));
                let ts = prog.to_builder(&sigma).build().expect(name);
                assert!(
                    verify(&ts, &mutex).expect("check").holds(),
                    "{name}({n}): mutex must hold explicitly"
                );
            }
        }
    }

    #[test]
    fn random_programs_validate_and_build() {
        let sigma = hierarchy_automata::alphabet::Alphabet::of_propositions(["p0", "p1"]).unwrap();
        for seed in 0..25 {
            let mut rng = StdRng::seed_from_u64(seed);
            let prog = random_program(&mut rng);
            prog.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let ts = prog
                .to_builder(&sigma)
                .build()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(ts.num_states() >= 1);
        }
    }
}
