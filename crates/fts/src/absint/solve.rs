//! The chaotic-iteration worklist solver.
//!
//! [`analyze`] runs one abstract domain over a [`Program`] and returns an
//! [`Invariant`]: for each *location* (a value of the program's `pc`
//! variable, or a single global location) a per-variable
//! over-approximation of the values that variable can take there,
//! concretized to 64-bit masks so downstream consumers (the certificate
//! checker, the lints, the model checker) need no knowledge of which
//! domain produced it.
//!
//! The solver is the textbook one: seed the locations of the initial
//! valuations, then repeatedly pop a location, push every command's
//! abstract post through [`assume`] + assignment transfer, and join into
//! the target locations until nothing changes. Intervals additionally
//! widen once a location has been updated [`WIDEN_DELAY`] times, bounding
//! the iteration count independently of domain sizes.

use super::domain::{
    assume, eval_expr_abs, guard_status, ConstDomain, Domain, DomainKind, IntervalDomain,
    ValueSetDomain,
};
use super::ir::{Branch, Guard, Program};
use std::collections::VecDeque;

/// Joins at one location before widening kicks in (intervals only).
pub const WIDEN_DELAY: usize = 3;

/// Counters describing one solver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Abstract post computations (one per command branch per visit).
    pub posts: usize,
    /// Joins against an existing location value.
    pub joins: usize,
    /// Joins where widening changed the result.
    pub widenings: usize,
    /// Worklist pops.
    pub iterations: usize,
}

/// The abstract values at one location, concretized to per-variable
/// masks (bit `v` of `values[x]` ⇔ variable `x` may be `v` here). An
/// all-zero row means the location is abstractly unreachable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocationInvariant {
    /// One mask per program variable, in declaration order.
    pub values: Vec<u64>,
}

/// A per-location invariant certificate produced by [`analyze`].
///
/// The invariant denotes, at each location `ℓ`, the cartesian set
/// `{vals | ∀x. vals[x] ∈ values[x]}`; soundness means every reachable
/// concrete state is in the set of its location. Pass the certificate to
/// [`certify`](super::certify::certify) to re-verify inductiveness
/// independently of this solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invariant {
    /// The domain that produced the certificate.
    pub domain: DomainKind,
    /// The program's `pc` variable, if flow-sensitive.
    pub pc: Option<usize>,
    /// The declared variable domain sizes (copied from the program).
    pub var_domains: Vec<usize>,
    /// One entry per location (`pc` value, or a single global entry).
    pub locations: Vec<LocationInvariant>,
    /// Per-location pair relations — `Some` only for
    /// [`DomainKind::Relational`] certificates (see
    /// [`relation`](super::relation)); the cartesian domains carry
    /// `None` and denote plain per-variable masks.
    pub relations: Option<Vec<super::relation::LocationRelations>>,
    /// Solver counters.
    pub stats: SolveStats,
}

impl Invariant {
    /// The analysis location of a concrete valuation.
    pub fn location_of(&self, vals: &[usize]) -> usize {
        self.pc.map_or(0, |p| vals[p])
    }

    /// Is the location abstractly reachable?
    pub fn location_reachable(&self, l: usize) -> bool {
        self.locations[l].values.iter().any(|&m| m != 0)
    }

    /// The number of abstractly reachable locations.
    pub fn num_reachable_locations(&self) -> usize {
        (0..self.locations.len())
            .filter(|&l| self.location_reachable(l))
            .count()
    }

    /// Does the invariant contain this concrete valuation? For a
    /// relational certificate the valuation must additionally project
    /// into every pair's joint value set.
    pub fn contains(&self, vals: &[usize]) -> bool {
        let l = self.location_of(vals);
        if l >= self.locations.len()
            || !vals
                .iter()
                .enumerate()
                .all(|(x, &v)| v < 64 && self.locations[l].values[x] >> v & 1 == 1)
        {
            return false;
        }
        if let Some(rels) = &self.relations {
            let rel = &rels[l];
            if !rel.pairs.is_empty() {
                let n = vals.len();
                let mut i = 0;
                for x in 0..n {
                    for y in x + 1..n {
                        if rel.pairs[i][vals[x]] >> vals[y] & 1 == 0 {
                            return false;
                        }
                        i += 1;
                    }
                }
            }
        }
        true
    }

    /// Does the invariant carry pair relations (a relational
    /// certificate over a multi-variable program)?
    pub fn has_relations(&self) -> bool {
        self.relations
            .as_ref()
            .is_some_and(|r| r.iter().any(|lr| !lr.pairs.is_empty()))
    }

    /// The union over reachable locations of a variable's value mask —
    /// every value the variable may take anywhere.
    pub fn union_mask(&self, var: usize) -> u64 {
        self.locations.iter().fold(0, |m, loc| m | loc.values[var])
    }

    /// Three-valued truth of a guard over the invariant at location `l`
    /// (evaluated in the value-set domain on the concretized masks). An
    /// unreachable location yields `Some(false)`.
    pub fn guard_status(&self, l: usize, g: &Guard) -> Option<bool> {
        if !self.location_reachable(l) {
            return Some(false);
        }
        guard_status::<ValueSetDomain>(g, &self.locations[l].values, &self.var_domains)
    }

    /// May the guard hold somewhere in the invariant at location `l`?
    pub fn guard_feasible(&self, l: usize, g: &Guard) -> bool {
        self.guard_status(l, g) != Some(false)
    }

    /// May the guard hold somewhere in the *relational* invariant at
    /// location `l`? Stronger than [`guard_feasible`](Self::guard_feasible):
    /// a concrete state satisfying the guard projects a recorded joint
    /// value into **every** pair, and that joint's conditioned cartesian
    /// environment admits the guard — so if some pair has no admitting
    /// joint, no such state exists. Falls back to the mask-based test for
    /// cartesian certificates.
    pub fn guard_feasible_rel(&self, l: usize, g: &Guard) -> bool {
        if !self.location_reachable(l) {
            return false;
        }
        let Some(rels) = &self.relations else {
            return self.guard_feasible(l, g);
        };
        let rel = &rels[l];
        if rel.pairs.is_empty() {
            return self.guard_feasible(l, g);
        }
        let masks = &self.locations[l].values;
        let domains = &self.var_domains;
        let nvars = domains.len();
        let mut i = 0;
        for x in 0..nvars {
            for y in x + 1..nvars {
                let mut admitted = false;
                'joints: for vx in 0..domains[x] {
                    let mut row = rel.pairs[i][vx];
                    while row != 0 {
                        let vy = row.trailing_zeros() as usize;
                        row &= row - 1;
                        if let Some(env) =
                            super::relation::conditioned_env(masks, rel, domains, x, vx, y, vy)
                        {
                            if assume::<ValueSetDomain>(g, &env, domains).is_some() {
                                admitted = true;
                                break 'joints;
                            }
                        }
                    }
                }
                if !admitted {
                    return false;
                }
                i += 1;
            }
        }
        true
    }
}

/// The abstract post of one branch: evaluate all right-hand sides in the
/// pre-environment, then assign (simultaneously), cutting each result to
/// its variable's domain. `None` when some assignment is abstractly
/// guaranteed out-of-domain (the branch is never taken).
pub(crate) fn post_branch<D: Domain>(
    env: &[D::Val],
    branch: &Branch,
    domains: &[usize],
) -> Option<Vec<D::Val>> {
    let results: Vec<(usize, D::Val)> = branch
        .assigns
        .iter()
        .map(|(x, e)| {
            (
                *x,
                D::cut(&eval_expr_abs::<D>(e, env, domains), domains[*x]),
            )
        })
        .collect();
    let mut out = env.to_vec();
    for (x, v) in results {
        if D::is_bottom(&v) {
            return None;
        }
        out[x] = v;
    }
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn merge<D: Domain>(
    l: usize,
    env: Vec<D::Val>,
    state: &mut [Option<Vec<D::Val>>],
    updates: &mut [usize],
    stats: &mut SolveStats,
    domains: &[usize],
    worklist: &mut VecDeque<usize>,
    on_list: &mut [bool],
) {
    let changed = match &mut state[l] {
        slot @ None => {
            *slot = Some(env);
            true
        }
        Some(old) => {
            stats.joins += 1;
            let widen_now = updates[l] >= WIDEN_DELAY;
            let mut changed = false;
            let mut next = Vec::with_capacity(env.len());
            for (i, new_v) in env.iter().enumerate() {
                let j = D::join(&old[i], new_v, domains[i]);
                let v = if widen_now {
                    let w = D::widen(&old[i], &j, domains[i]);
                    if w != j {
                        stats.widenings += 1;
                    }
                    w
                } else {
                    j
                };
                if v != old[i] {
                    changed = true;
                }
                next.push(v);
            }
            if changed {
                *old = next;
            }
            changed
        }
    };
    if changed {
        updates[l] += 1;
        if !on_list[l] {
            on_list[l] = true;
            worklist.push_back(l);
        }
    }
}

pub(crate) fn run<D: Domain>(prog: &Program) -> Invariant {
    let domains = &prog.domains;
    let nlocs = prog.num_locations();
    let mut state: Vec<Option<Vec<D::Val>>> = vec![None; nlocs];
    let mut updates = vec![0usize; nlocs];
    let mut on_list = vec![false; nlocs];
    let mut worklist = VecDeque::new();
    let mut stats = SolveStats::default();
    for init in &prog.inits {
        let l = prog.location_of(init);
        let env: Vec<D::Val> = init.iter().map(|&v| D::singleton(v)).collect();
        merge::<D>(
            l,
            env,
            &mut state,
            &mut updates,
            &mut stats,
            domains,
            &mut worklist,
            &mut on_list,
        );
    }
    while let Some(l) = worklist.pop_front() {
        on_list[l] = false;
        stats.iterations += 1;
        let env = state[l].clone().expect("worklist entries are reachable");
        for cmd in &prog.commands {
            let Some(env_g) = assume::<D>(&cmd.guard, &env, domains) else {
                continue;
            };
            for br in &cmd.branches {
                stats.posts += 1;
                let Some(env_b) = post_branch::<D>(&env_g, br, domains) else {
                    continue;
                };
                match prog.pc {
                    None => merge::<D>(
                        0,
                        env_b,
                        &mut state,
                        &mut updates,
                        &mut stats,
                        domains,
                        &mut worklist,
                        &mut on_list,
                    ),
                    Some(p) => {
                        let mask = D::mask(&env_b[p], domains[p]);
                        for l2 in 0..domains[p] {
                            if mask >> l2 & 1 == 0 {
                                continue;
                            }
                            let mut env_t = env_b.clone();
                            env_t[p] = D::singleton(l2);
                            merge::<D>(
                                l2,
                                env_t,
                                &mut state,
                                &mut updates,
                                &mut stats,
                                domains,
                                &mut worklist,
                                &mut on_list,
                            );
                        }
                    }
                }
            }
        }
    }
    let locations = state
        .iter()
        .map(|slot| LocationInvariant {
            values: match slot {
                None => vec![0; domains.len()],
                Some(env) => env
                    .iter()
                    .zip(domains)
                    .map(|(v, &d)| D::mask(v, d))
                    .collect(),
            },
        })
        .collect();
    Invariant {
        domain: D::KIND,
        pc: prog.pc,
        var_domains: domains.clone(),
        locations,
        relations: None,
        stats,
    }
}

/// Runs the chosen abstract domain over the program and returns the
/// per-location invariant. The program must pass
/// [`Program::validate`]; the solver assumes well-formedness.
pub fn analyze(prog: &Program, kind: DomainKind) -> Invariant {
    debug_assert!(prog.validate().is_ok(), "analyze() needs a valid program");
    match kind {
        DomainKind::Constants => run::<ConstDomain>(prog),
        DomainKind::Intervals => run::<IntervalDomain>(prog),
        DomainKind::ValueSets => run::<ValueSetDomain>(prog),
        DomainKind::Relational => super::relation::run_relational(prog),
    }
}

#[cfg(test)]
mod tests {
    use super::super::examples;
    use super::super::ir::{Expr, Guard};
    use super::*;
    use crate::system::Fairness;

    #[test]
    fn value_sets_prove_mux_sem_mutual_exclusion() {
        let prog = examples::mux_sem_abs(Fairness::Strong);
        let inv = analyze(&prog, DomainKind::ValueSets);
        // At location pc1 = C (2), the invariant knows pc2 ≠ C: the grant
        // guard's refinement survives the pc partition.
        assert!(inv.location_reachable(2));
        assert_eq!(inv.locations[2].values[1] & 0b100, 0, "{inv:?}");
        // So "both critical" is infeasible everywhere.
        let both = Guard::var_eq(0, 2).and(Guard::var_eq(1, 2));
        for l in 0..inv.locations.len() {
            assert_eq!(inv.guard_status(l, &both), Some(false), "location {l}");
        }
    }

    #[test]
    fn flow_insensitive_analysis_cannot_prove_mutex() {
        let mut prog = examples::mux_sem_abs(Fairness::Strong);
        prog.pc = None;
        let inv = analyze(&prog, DomainKind::ValueSets);
        let both = Guard::var_eq(0, 2).and(Guard::var_eq(1, 2));
        // Without the pc partition the cartesian abstraction loses the
        // correlation — an honest imprecision, not a bug.
        assert_eq!(inv.guard_status(0, &both), None);
    }

    #[test]
    fn constants_find_frozen_variables() {
        let mut prog = examples::token_ring_abs(true);
        let frozen = prog.var("frozen", 2);
        for init in &mut prog.inits {
            init.push(0);
        }
        let inv = analyze(&prog, DomainKind::Constants);
        assert_eq!(inv.union_mask(frozen), 0b01);
        // The live position variable is Top for constants.
        assert_eq!(inv.union_mask(0), 0b111);
    }

    #[test]
    fn intervals_widen_and_stay_sound() {
        // A counter walking 0..=9; widening fires before the 10th join.
        let mut prog = super::super::ir::Program::new();
        let x = prog.var("x", 10);
        prog.init(&[0]);
        prog.observe_prop(Guard::var_eq(x, 9));
        prog.command(
            "inc",
            Fairness::Weak,
            Guard::lt(Expr::v(x), Expr::c(9)),
            vec![Branch {
                assigns: vec![(x, Expr::v(x).add(Expr::c(1)))],
            }],
        );
        prog.command("idle", Fairness::None, Guard::True, vec![Branch::skip()]);
        let inv = analyze(&prog, DomainKind::Intervals);
        assert!(inv.stats.widenings > 0, "{:?}", inv.stats);
        assert_eq!(inv.locations[0].values[x], (1 << 10) - 1);
        // Value sets need no widening and reach the same fixpoint here.
        let vs = analyze(&prog, DomainKind::ValueSets);
        assert_eq!(vs.stats.widenings, 0);
        assert_eq!(vs.locations[0].values[x], (1 << 10) - 1);
    }

    #[test]
    fn unreachable_location_has_empty_invariant() {
        let mut prog = super::super::ir::Program::new();
        let x = prog.var("x", 3);
        prog.set_pc(x);
        prog.init(&[0]);
        prog.observe_prop(Guard::var_eq(x, 1));
        // x toggles between 0 and 1; location 2 never seen.
        prog.command(
            "toggle",
            Fairness::Weak,
            Guard::True,
            vec![Branch {
                assigns: vec![(x, Expr::c(1).sub(Expr::v(x)))],
            }],
        );
        let inv = analyze(&prog, DomainKind::ValueSets);
        assert!(inv.location_reachable(0));
        assert!(inv.location_reachable(1));
        assert!(!inv.location_reachable(2));
        assert_eq!(inv.num_reachable_locations(), 2);
        assert!(inv.contains(&[1]));
        assert!(!inv.contains(&[2]));
    }
}
