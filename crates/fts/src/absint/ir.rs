//! A declarative guarded-command IR that abstract interpretation can see
//! through.
//!
//! [`ProgramBuilder`](crate::builder::ProgramBuilder) takes guards and
//! updates as opaque closures — fine for enumeration, useless for static
//! analysis. [`Program`] is the declarative counterpart: expressions
//! ([`Expr`]), guards ([`Guard`]) and simultaneous assignments
//! ([`Branch`]) over finite-domain variables, with **one** concrete
//! semantics (`eval_expr` / `eval_guard`) shared by the compiler to
//! [`ProgramBuilder`], the abstract transformers in
//! [`domain`](super::domain), and the independent certificate checker in
//! [`certify`](super::certify).
//!
//! Out-of-domain results: a branch whose assignment produces a value
//! outside the target variable's domain is simply *not taken* (the
//! command offers no such successor). [`Program::to_builder`] filters
//! those results out, so a valid [`Program`] never trips
//! `BuildError::UpdateOutOfDomain`.

use crate::builder::ProgramBuilder;
use crate::system::Fairness;
use hierarchy_automata::alphabet::Alphabet;
use std::fmt;

/// An integer expression over program variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal constant.
    Const(i64),
    /// The current value of variable `i` (by declaration index).
    Var(usize),
    /// Sum of the operands.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of the operands.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of the operands.
    Mul(Box<Expr>, Box<Expr>),
    /// Euclidean remainder of the operand modulo a positive constant
    /// (always in `0..m`, matching `i64::rem_euclid`).
    Mod(Box<Expr>, u64),
}

impl Expr {
    /// Shorthand for [`Expr::Var`].
    pub fn v(i: usize) -> Expr {
        Expr::Var(i)
    }

    /// Shorthand for [`Expr::Const`].
    pub fn c(k: i64) -> Expr {
        Expr::Const(k)
    }

    // The builder names mirror the `Expr` constructors; the `std::ops`
    // impls below provide the operator forms.
    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self mod m` (Euclidean).
    pub fn modulo(self, m: u64) -> Expr {
        Expr::Mod(Box::new(self), m)
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
}

impl Cmp {
    /// The negated operator (`¬(a op b)  ⟺  a op.negate() b`).
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Lt => Cmp::Ge,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Ge => Cmp::Lt,
        }
    }

    /// The mirrored operator (`a op b  ⟺  b op.flip() a`).
    pub fn flip(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Eq,
            Cmp::Ne => Cmp::Ne,
            Cmp::Lt => Cmp::Gt,
            Cmp::Le => Cmp::Ge,
            Cmp::Gt => Cmp::Lt,
            Cmp::Ge => Cmp::Le,
        }
    }

    /// Evaluates the operator on concrete values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }
}

/// A boolean guard over program variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Guard {
    /// Always holds.
    True,
    /// Never holds.
    False,
    /// A comparison between two expressions.
    Cmp(Cmp, Expr, Expr),
    /// Negation.
    Not(Box<Guard>),
    /// Conjunction.
    And(Box<Guard>, Box<Guard>),
    /// Disjunction.
    Or(Box<Guard>, Box<Guard>),
}

impl Guard {
    /// `lhs == rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Guard {
        Guard::Cmp(Cmp::Eq, lhs, rhs)
    }

    /// `lhs != rhs`.
    pub fn ne(lhs: Expr, rhs: Expr) -> Guard {
        Guard::Cmp(Cmp::Ne, lhs, rhs)
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: Expr, rhs: Expr) -> Guard {
        Guard::Cmp(Cmp::Lt, lhs, rhs)
    }

    /// `lhs <= rhs`.
    pub fn le(lhs: Expr, rhs: Expr) -> Guard {
        Guard::Cmp(Cmp::Le, lhs, rhs)
    }

    /// `lhs > rhs`.
    pub fn gt(lhs: Expr, rhs: Expr) -> Guard {
        Guard::Cmp(Cmp::Gt, lhs, rhs)
    }

    /// `lhs >= rhs`.
    pub fn ge(lhs: Expr, rhs: Expr) -> Guard {
        Guard::Cmp(Cmp::Ge, lhs, rhs)
    }

    /// `var == k`, the most common atom.
    pub fn var_eq(var: usize, k: i64) -> Guard {
        Guard::eq(Expr::Var(var), Expr::Const(k))
    }

    /// `var != k`.
    pub fn var_ne(var: usize, k: i64) -> Guard {
        Guard::ne(Expr::Var(var), Expr::Const(k))
    }

    /// Conjunction combinator.
    pub fn and(self, rhs: Guard) -> Guard {
        Guard::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction combinator.
    pub fn or(self, rhs: Guard) -> Guard {
        Guard::Or(Box::new(self), Box::new(rhs))
    }

    /// Negation combinator.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Guard {
        Guard::Not(Box::new(self))
    }

    /// Pushes one negation inward (De Morgan + operator negation); the
    /// result contains no [`Guard::Not`] at the root unless its operand
    /// was already negation-free and atomic.
    pub fn negate(&self) -> Guard {
        match self {
            Guard::True => Guard::False,
            Guard::False => Guard::True,
            Guard::Cmp(op, a, b) => Guard::Cmp(op.negate(), a.clone(), b.clone()),
            Guard::Not(g) => (**g).clone(),
            Guard::And(a, b) => Guard::Or(Box::new(a.negate()), Box::new(b.negate())),
            Guard::Or(a, b) => Guard::And(Box::new(a.negate()), Box::new(b.negate())),
        }
    }
}

/// Evaluates an expression on a concrete valuation.
pub fn eval_expr(e: &Expr, vals: &[usize]) -> i64 {
    match e {
        Expr::Const(k) => *k,
        Expr::Var(i) => vals[*i] as i64,
        Expr::Add(a, b) => eval_expr(a, vals) + eval_expr(b, vals),
        Expr::Sub(a, b) => eval_expr(a, vals) - eval_expr(b, vals),
        Expr::Mul(a, b) => eval_expr(a, vals) * eval_expr(b, vals),
        Expr::Mod(a, m) => eval_expr(a, vals).rem_euclid(*m as i64),
    }
}

/// Evaluates a guard on a concrete valuation.
pub fn eval_guard(g: &Guard, vals: &[usize]) -> bool {
    match g {
        Guard::True => true,
        Guard::False => false,
        Guard::Cmp(op, a, b) => op.eval(eval_expr(a, vals), eval_expr(b, vals)),
        Guard::Not(g) => !eval_guard(g, vals),
        Guard::And(a, b) => eval_guard(a, vals) && eval_guard(b, vals),
        Guard::Or(a, b) => eval_guard(a, vals) || eval_guard(b, vals),
    }
}

/// One nondeterministic outcome of a command: a *simultaneous* assignment
/// (all right-hand sides are evaluated in the pre-state). Variables not
/// assigned keep their value. A branch whose result leaves any target
/// domain is not taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branch {
    /// `(variable, expression)` pairs; at most one per variable.
    pub assigns: Vec<(usize, Expr)>,
}

impl Branch {
    /// A branch assigning nothing (the stutter branch).
    pub fn skip() -> Branch {
        Branch {
            assigns: Vec::new(),
        }
    }

    /// A branch from assignment pairs.
    pub fn assign(assigns: Vec<(usize, Expr)>) -> Branch {
        Branch { assigns }
    }

    /// Applies the branch to a concrete valuation; `None` if any result
    /// leaves its domain.
    pub fn apply(&self, vals: &[usize], domains: &[usize]) -> Option<Vec<usize>> {
        let mut next = vals.to_vec();
        for (x, e) in &self.assigns {
            let r = eval_expr(e, vals);
            if r < 0 || r >= domains[*x] as i64 {
                return None;
            }
            next[*x] = r as usize;
        }
        Some(next)
    }
}

/// A guarded command with one or more nondeterministic branches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Transition name (becomes the transition name in the built system).
    pub name: String,
    /// Fairness attached to the whole command.
    pub fairness: Fairness,
    /// Enabling condition.
    pub guard: Guard,
    /// Nondeterministic outcomes (at least one).
    pub branches: Vec<Branch>,
}

/// A declarative guarded-command program over finite-domain variables.
///
/// The mirror of [`ProgramBuilder`] with transparent guards and updates;
/// [`Program::to_builder`] compiles it down so the two stay one source of
/// truth. Observations are one [`Guard`] per alphabet proposition (the
/// built observation maps a valuation to the symbol of the induced
/// boolean valuation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Variable names, in declaration order.
    pub var_names: Vec<String>,
    /// Variable domains `{0, …, d−1}`, each `1 ≤ d ≤ 64`.
    pub domains: Vec<usize>,
    /// Initial valuations.
    pub inits: Vec<Vec<usize>>,
    /// One guard per alphabet proposition, in proposition order.
    pub observations: Vec<Guard>,
    /// The guarded commands.
    pub commands: Vec<Command>,
    /// Optional control variable: invariants are partitioned by its value
    /// (flow-sensitivity). `None` means one global location.
    pub pc: Option<usize>,
}

/// Structural errors reported by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// The program declares no variables.
    NoVariables,
    /// A domain is empty or exceeds the 64-value mask limit.
    BadDomain {
        /// The offending variable index.
        var: usize,
        /// Its declared domain size.
        domain: usize,
    },
    /// No initial valuation was supplied.
    NoInit,
    /// An initial valuation has the wrong arity or leaves a domain.
    BadInit {
        /// Index into [`Program::inits`].
        init: usize,
    },
    /// An expression or guard references an undeclared variable.
    BadVarIndex {
        /// The undeclared index.
        var: usize,
    },
    /// A `Mod` expression has modulus zero.
    ZeroModulus,
    /// A command has no branches.
    NoBranches {
        /// The offending command name.
        command: String,
    },
    /// A branch assigns the same variable twice.
    DuplicateAssign {
        /// The offending command name.
        command: String,
        /// The doubly-assigned variable index.
        var: usize,
    },
    /// The `pc` field names an undeclared variable.
    BadPc,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::NoVariables => write!(f, "program declares no variables"),
            IrError::BadDomain { var, domain } => {
                write!(f, "variable #{var} has domain size {domain} (need 1..=64)")
            }
            IrError::NoInit => write!(f, "no initial valuation"),
            IrError::BadInit { init } => write!(f, "initial valuation #{init} is ill-formed"),
            IrError::BadVarIndex { var } => write!(f, "reference to undeclared variable #{var}"),
            IrError::ZeroModulus => write!(f, "Mod expression with modulus 0"),
            IrError::NoBranches { command } => write!(f, "command {command:?} has no branches"),
            IrError::DuplicateAssign { command, var } => {
                write!(f, "command {command:?} assigns variable #{var} twice")
            }
            IrError::BadPc => write!(f, "pc names an undeclared variable"),
        }
    }
}

impl std::error::Error for IrError {}

fn check_expr(e: &Expr, nvars: usize) -> Result<(), IrError> {
    match e {
        Expr::Const(_) => Ok(()),
        Expr::Var(i) => {
            if *i < nvars {
                Ok(())
            } else {
                Err(IrError::BadVarIndex { var: *i })
            }
        }
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
            check_expr(a, nvars)?;
            check_expr(b, nvars)
        }
        Expr::Mod(a, m) => {
            if *m == 0 {
                return Err(IrError::ZeroModulus);
            }
            check_expr(a, nvars)
        }
    }
}

fn check_guard(g: &Guard, nvars: usize) -> Result<(), IrError> {
    match g {
        Guard::True | Guard::False => Ok(()),
        Guard::Cmp(_, a, b) => {
            check_expr(a, nvars)?;
            check_expr(b, nvars)
        }
        Guard::Not(g) => check_guard(g, nvars),
        Guard::And(a, b) | Guard::Or(a, b) => {
            check_guard(a, nvars)?;
            check_guard(b, nvars)
        }
    }
}

impl Program {
    /// An empty program (add variables, inits, observations, commands).
    pub fn new() -> Program {
        Program {
            var_names: Vec::new(),
            domains: Vec::new(),
            inits: Vec::new(),
            observations: Vec::new(),
            commands: Vec::new(),
            pc: None,
        }
    }

    /// Declares a variable with domain `{0, …, domain−1}`; returns its
    /// index.
    pub fn var(&mut self, name: impl Into<String>, domain: usize) -> usize {
        self.var_names.push(name.into());
        self.domains.push(domain);
        self.domains.len() - 1
    }

    /// Declares an initial valuation (one value per variable).
    pub fn init(&mut self, valuation: &[usize]) {
        self.inits.push(valuation.to_vec());
    }

    /// Appends an observation guard for the next alphabet proposition.
    pub fn observe_prop(&mut self, guard: Guard) {
        self.observations.push(guard);
    }

    /// Adds a guarded command.
    pub fn command(
        &mut self,
        name: impl Into<String>,
        fairness: Fairness,
        guard: Guard,
        branches: Vec<Branch>,
    ) {
        self.commands.push(Command {
            name: name.into(),
            fairness,
            guard,
            branches,
        });
    }

    /// Marks `var` as the control variable for flow-sensitive analysis.
    pub fn set_pc(&mut self, var: usize) {
        self.pc = Some(var);
    }

    /// Checks structural well-formedness: at least one variable, domains
    /// in `1..=64` (the value-set mask limit), inits of correct arity and
    /// in-domain, variable references declared, nonzero moduli, commands
    /// with at least one branch and no doubly-assigned variable, `pc`
    /// declared.
    ///
    /// # Errors
    ///
    /// The first [`IrError`] found, in declaration order.
    pub fn validate(&self) -> Result<(), IrError> {
        let nvars = self.domains.len();
        if nvars == 0 {
            return Err(IrError::NoVariables);
        }
        for (var, &domain) in self.domains.iter().enumerate() {
            if domain == 0 || domain > 64 {
                return Err(IrError::BadDomain { var, domain });
            }
        }
        if self.inits.is_empty() {
            return Err(IrError::NoInit);
        }
        for (i, init) in self.inits.iter().enumerate() {
            if init.len() != nvars || init.iter().zip(&self.domains).any(|(v, d)| v >= d) {
                return Err(IrError::BadInit { init: i });
            }
        }
        for g in &self.observations {
            check_guard(g, nvars)?;
        }
        for cmd in &self.commands {
            check_guard(&cmd.guard, nvars)?;
            if cmd.branches.is_empty() {
                return Err(IrError::NoBranches {
                    command: cmd.name.clone(),
                });
            }
            for br in &cmd.branches {
                let mut seen = vec![false; nvars];
                for (x, e) in &br.assigns {
                    if *x >= nvars {
                        return Err(IrError::BadVarIndex { var: *x });
                    }
                    if seen[*x] {
                        return Err(IrError::DuplicateAssign {
                            command: cmd.name.clone(),
                            var: *x,
                        });
                    }
                    seen[*x] = true;
                    check_expr(e, nvars)?;
                }
            }
        }
        if let Some(p) = self.pc {
            if p >= nvars {
                return Err(IrError::BadPc);
            }
        }
        Ok(())
    }

    /// The analysis location of a concrete valuation: the value of the
    /// `pc` variable, or `0` when the program is flow-insensitive.
    pub fn location_of(&self, vals: &[usize]) -> usize {
        self.pc.map_or(0, |p| vals[p])
    }

    /// The number of analysis locations (`pc`'s domain, or `1`).
    pub fn num_locations(&self) -> usize {
        self.pc.map_or(1, |p| self.domains[p])
    }

    /// Compiles the program to a [`ProgramBuilder`] over `sigma`, which
    /// must be a proposition (valuation) alphabet with exactly one
    /// proposition per observation guard.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` has a different number of propositions than the
    /// program has observation guards. Call [`Program::validate`] first;
    /// an invalid program may panic inside the builder's closures.
    pub fn to_builder(&self, sigma: &Alphabet) -> ProgramBuilder {
        assert_eq!(
            sigma.propositions().len(),
            self.observations.len(),
            "alphabet has {} propositions but the program observes {}",
            sigma.propositions().len(),
            self.observations.len()
        );
        let mut p = ProgramBuilder::new(sigma);
        for (name, &dom) in self.var_names.iter().zip(&self.domains) {
            p.var(name.clone(), dom);
        }
        for init in &self.inits {
            p.init(init);
        }
        let obs = self.observations.clone();
        p.observe(move |vals, alphabet| {
            let bits: Vec<bool> = obs.iter().map(|g| eval_guard(g, vals)).collect();
            alphabet.valuation_symbol(&bits)
        });
        for cmd in &self.commands {
            let guard = cmd.guard.clone();
            let branches = cmd.branches.clone();
            let domains = self.domains.clone();
            p.command(
                cmd.name.clone(),
                cmd.fairness,
                move |vals| eval_guard(&guard, vals),
                move |vals| {
                    branches
                        .iter()
                        .filter_map(|br| br.apply(vals, &domains))
                        .collect()
                },
            );
        }
        p
    }
}

impl Default for Program {
    fn default() -> Self {
        Program::new()
    }
}

// ---- structural encoding (content addressing) ----

fn enc_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn enc_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn enc_str(out: &mut Vec<u8>, s: &str) {
    enc_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn enc_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Const(k) => {
            out.push(0);
            enc_i64(out, *k);
        }
        Expr::Var(i) => {
            out.push(1);
            enc_u64(out, *i as u64);
        }
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
            out.push(match e {
                Expr::Add(..) => 2,
                Expr::Sub(..) => 3,
                _ => 4,
            });
            enc_expr(out, a);
            enc_expr(out, b);
        }
        Expr::Mod(a, m) => {
            out.push(5);
            enc_expr(out, a);
            enc_u64(out, *m);
        }
    }
}

fn enc_guard(out: &mut Vec<u8>, g: &Guard) {
    match g {
        Guard::True => out.push(0),
        Guard::False => out.push(1),
        Guard::Cmp(op, a, b) => {
            out.push(2);
            out.push(match op {
                Cmp::Eq => 0,
                Cmp::Ne => 1,
                Cmp::Lt => 2,
                Cmp::Le => 3,
                Cmp::Gt => 4,
                Cmp::Ge => 5,
            });
            enc_expr(out, a);
            enc_expr(out, b);
        }
        Guard::Not(inner) => {
            out.push(3);
            enc_guard(out, inner);
        }
        Guard::And(a, b) | Guard::Or(a, b) => {
            out.push(if matches!(g, Guard::And(..)) { 4 } else { 5 });
            enc_guard(out, a);
            enc_guard(out, b);
        }
    }
}

impl Program {
    /// An unambiguous byte encoding of the whole program — every field,
    /// length-prefixed and tagged, so two programs encode equal iff they
    /// are structurally equal (`==`). This is the payload the
    /// classification service hashes to content-address program
    /// artifacts (`hierarchy_automata::canonical::hash_bytes`).
    pub fn structural_encoding(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"absint-program/v1\0");
        enc_u64(&mut out, self.var_names.len() as u64);
        for (name, &dom) in self.var_names.iter().zip(&self.domains) {
            enc_str(&mut out, name);
            enc_u64(&mut out, dom as u64);
        }
        enc_u64(&mut out, self.inits.len() as u64);
        for init in &self.inits {
            enc_u64(&mut out, init.len() as u64);
            for &v in init {
                enc_u64(&mut out, v as u64);
            }
        }
        enc_u64(&mut out, self.observations.len() as u64);
        for g in &self.observations {
            enc_guard(&mut out, g);
        }
        enc_u64(&mut out, self.commands.len() as u64);
        for cmd in &self.commands {
            enc_str(&mut out, &cmd.name);
            out.push(match cmd.fairness {
                Fairness::None => 0,
                Fairness::Weak => 1,
                Fairness::Strong => 2,
            });
            enc_guard(&mut out, &cmd.guard);
            enc_u64(&mut out, cmd.branches.len() as u64);
            for br in &cmd.branches {
                enc_u64(&mut out, br.assigns.len() as u64);
                for (x, e) in &br.assigns {
                    enc_u64(&mut out, *x as u64);
                    enc_expr(&mut out, e);
                }
            }
        }
        match self.pc {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                enc_u64(&mut out, p as u64);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_hand_computation() {
        let vals = &[2, 5];
        let e = Expr::v(0).add(Expr::v(1)).mul(Expr::c(3)); // (2+5)*3
        assert_eq!(eval_expr(&e, vals), 21);
        assert_eq!(eval_expr(&e.modulo(5), vals), 1);
        assert_eq!(eval_expr(&Expr::c(-7).modulo(5), vals), 3); // Euclidean
        let g = Guard::lt(Expr::v(0), Expr::v(1)).and(Guard::var_ne(1, 5).not());
        assert!(eval_guard(&g, vals));
        assert!(!eval_guard(&g.negate(), vals));
    }

    #[test]
    fn negate_is_complement_pointwise() {
        let g = Guard::var_eq(0, 1)
            .or(Guard::ge(Expr::v(1), Expr::c(2)))
            .and(Guard::var_ne(0, 0));
        let n = g.negate();
        for a in 0..3 {
            for b in 0..3 {
                let vals = &[a, b];
                assert_ne!(eval_guard(&g, vals), eval_guard(&n, vals), "{vals:?}");
            }
        }
    }

    #[test]
    fn branch_drops_out_of_domain_results() {
        let br = Branch::assign(vec![(0, Expr::v(0).add(Expr::c(1)))]);
        assert_eq!(br.apply(&[0], &[2]), Some(vec![1]));
        assert_eq!(br.apply(&[1], &[2]), None); // 2 leaves {0,1}
        let br = Branch::assign(vec![(0, Expr::v(0).sub(Expr::c(1)))]);
        assert_eq!(br.apply(&[0], &[2]), None); // −1 leaves {0,1}
    }

    #[test]
    fn validate_catches_structural_errors() {
        let mut p = Program::new();
        assert_eq!(p.validate(), Err(IrError::NoVariables));
        let x = p.var("x", 2);
        assert_eq!(p.validate(), Err(IrError::NoInit));
        p.init(&[0]);
        assert_eq!(p.validate(), Ok(()));
        p.init(&[2]);
        assert_eq!(p.validate(), Err(IrError::BadInit { init: 1 }));
        p.inits.pop();
        p.command("bad", Fairness::None, Guard::var_eq(7, 0), vec![]);
        assert_eq!(p.validate(), Err(IrError::BadVarIndex { var: 7 }));
        p.commands[0].guard = Guard::True;
        assert_eq!(
            p.validate(),
            Err(IrError::NoBranches {
                command: "bad".to_string()
            })
        );
        p.commands[0]
            .branches
            .push(Branch::assign(vec![(x, Expr::c(0)), (x, Expr::c(1))]));
        assert_eq!(
            p.validate(),
            Err(IrError::DuplicateAssign {
                command: "bad".to_string(),
                var: x
            })
        );
        p.commands[0].branches[0].assigns.pop();
        assert_eq!(p.validate(), Ok(()));
        p.pc = Some(9);
        assert_eq!(p.validate(), Err(IrError::BadPc));
        p.pc = Some(x);
        assert_eq!(p.validate(), Ok(()));
        p.domains[x] = 65;
        assert!(matches!(p.validate(), Err(IrError::BadDomain { .. })));
    }

    #[test]
    fn structural_encoding_separates_structurally_distinct_programs() {
        let mut p = Program::new();
        let x = p.var("x", 2);
        p.init(&[0]);
        p.observe_prop(Guard::var_eq(x, 1));
        p.command(
            "toggle",
            Fairness::Weak,
            Guard::True,
            vec![Branch::assign(vec![(x, Expr::c(1).sub(Expr::v(x)))])],
        );
        let base = p.structural_encoding();
        assert_eq!(base, p.clone().structural_encoding(), "deterministic");

        let mut renamed = p.clone();
        renamed.var_names[0] = "y".to_string();
        assert_ne!(base, renamed.structural_encoding());

        let mut refair = p.clone();
        refair.commands[0].fairness = Fairness::Strong;
        assert_ne!(base, refair.structural_encoding());

        let mut rewired = p.clone();
        rewired.commands[0].guard = Guard::var_eq(x, 0);
        assert_ne!(base, rewired.structural_encoding());

        let mut with_pc = p.clone();
        with_pc.set_pc(x);
        assert_ne!(base, with_pc.structural_encoding());
    }

    #[test]
    fn to_builder_agrees_with_direct_construction() {
        // The one-bit blinker from the builder docs, written in the IR.
        let sigma = Alphabet::of_propositions(["x"]).unwrap();
        let mut p = Program::new();
        let x = p.var("x", 2);
        p.init(&[0]);
        p.observe_prop(Guard::var_eq(x, 1));
        p.command(
            "toggle",
            Fairness::Weak,
            Guard::True,
            vec![Branch::assign(vec![(x, Expr::c(1).sub(Expr::v(x)))])],
        );
        p.command("idle", Fairness::None, Guard::True, vec![Branch::skip()]);
        p.validate().unwrap();
        let ts = p.to_builder(&sigma).build().unwrap();
        assert_eq!(ts.num_states(), 2);
        assert_eq!(ts.transitions().len(), 2);
    }
}
