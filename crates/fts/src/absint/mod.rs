//! Abstract interpretation for guarded-command programs — the static
//! half of the safety story.
//!
//! The paper characterizes safety properties as exactly the ones
//! provable by the *invariance* proof rule: exhibit an inductive
//! assertion that contains the initial states, is preserved by every
//! transition, and implies the required property. This module mechanizes
//! that rule over the declarative program IR:
//!
//! * [`ir`] — transparent expressions, guards and guarded commands
//!   ([`Program`]), compilable to the closure-based
//!   [`ProgramBuilder`](crate::builder::ProgramBuilder) so the abstract
//!   and explicit engines share one semantics;
//! * [`domain`] — three cartesian abstract domains (constant
//!   propagation, clipped intervals with widening, per-variable value
//!   sets) over a shared transfer-function core;
//! * [`relation`] — the pair-relation domain on top of the value sets:
//!   per-location joint value sets for every variable pair, keeping the
//!   correlations (Peterson's `turn`/`pc`, a ring's token bits) the
//!   cartesian domains provably lose;
//! * [`solve`] — the chaotic-iteration worklist solver, producing a
//!   per-location [`Invariant`] certificate with concretized masks;
//! * [`certify`] — independent re-verification of a certificate:
//!   transition-by-transition inductiveness ([`certify`](certify::certify))
//!   and a fully concrete enumeration variant
//!   ([`certify_exhaustive`](certify::certify_exhaustive)), so a solver
//!   bug cannot silently claim soundness;
//! * [`examples`] — the paper's programs (MUX-SEM, the token ring,
//!   Peterson) in the IR, parameterized N-process families (`mux_sem_n`,
//!   `token_ring_n`, `dining_philosophers`), plus seeded random programs
//!   for differential testing.
//!
//! The model checker consumes invariants through
//! [`checker::check_with_invariants`](crate::checker::check_with_invariants)
//! (discharging safety properties without building any product state);
//! `spec-lint` consumes them through the semantic `FTS` rules.

pub mod certify;
pub mod domain;
pub mod examples;
pub mod ir;
pub mod relation;
pub mod solve;

pub use certify::{certify, certify_exhaustive, CertificateError};
pub use domain::{
    assume, guard_status, AbsInt, ConstDomain, Domain, DomainKind, Flat, IntervalDomain,
    ValueSetDomain,
};
pub use examples::{
    catalogue, dining_philosophers, mux_sem_abs, mux_sem_n, peterson_abs, random_program,
    token_ring_abs, token_ring_n,
};
pub use ir::{Branch, Cmp, Command, Expr, Guard, IrError, Program};
pub use relation::LocationRelations;
pub use solve::{analyze, Invariant, LocationInvariant, SolveStats};
