//! The pair-relation abstract domain — the relational layer on top of
//! the cartesian masks.
//!
//! A cartesian invariant keeps one value set per variable and therefore
//! cannot express a *correlation*: "`pc2 = 3` implies `tb = 1`" is
//! invisible when `pc2` and `tb` are abstracted independently, which is
//! exactly why the cartesian domains fail on Peterson's algorithm. This
//! domain keeps, per location, a joint value set for **every unordered
//! pair of variables** — the 2-decomposition of the reachable relation:
//!
//! * `pairs[pair_index(x, y)][vx]` is a 64-bit mask over `dom(y)`; bit
//!   `vy` means the joint valuation `(x = vx, y = vy)` may occur here;
//! * the per-variable masks of the enclosing
//!   [`LocationInvariant`](super::solve::LocationInvariant) are kept in
//!   sync as projections;
//! * the concretization of a location is the set of valuations whose
//!   every pair projection is a recorded joint value (and whose every
//!   variable is in its mask).
//!
//! Transfer works by **pair conditioning**: for each pair `(x, y)` and
//! each joint value `(vx, vy)` it holds, build the cartesian environment
//! of everything compatible with that joint (each other variable `w` is
//! cut to `masks[w] ∩ row(x, vx → w) ∩ row(y, vy → w)`), run the shared
//! value-set transfer ([`assume`] + [`post_branch`]) through it, and
//! merge the result *anchored*: only the conditioned pair's own joint
//! values and the anchors' projections are updated from each
//! conditioning. Every concrete transition is covered by the
//! conditioning of its own pre-state's joint in **every** pair, so the
//! merge is sound — and because each conditioning carries the other
//! pairs' rows into the environment, guards pick up correlations the
//! cartesian transfer provably loses (Peterson's `enter1` is infeasible
//! from the joint `(pc2 = 3, tb = 1)`, so location `pc1 = 3` never
//! learns `pc2 = 3`).
//!
//! The lattice of masks is finite (height `≤ 64` per row), joins are
//! bitwise-or, so the chaotic iteration terminates without widening —
//! like the value-set domain, `stats.widenings` stays `0`.

use super::domain::{assume, DomainKind, ValueSetDomain};
use super::ir::Program;
use super::solve::{post_branch, run, Invariant, SolveStats};
use std::collections::VecDeque;

/// The pair relations of one location: `pairs[pair_index(x, y)][vx]` is
/// the mask over `dom(y)` of values `y` may take jointly with `x = vx`.
/// Programs with fewer than two variables carry an empty list (the
/// domain degenerates to the value sets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocationRelations {
    /// One row table per unordered variable pair `(x, y)`, `x < y`, in
    /// [`pair_index`] order.
    pub pairs: Vec<Vec<u64>>,
}

/// The number of unordered variable pairs of an `nvars`-variable program.
pub fn num_pairs(nvars: usize) -> usize {
    nvars * nvars.saturating_sub(1) / 2
}

/// The index of the pair `(x, y)` (`x < y`) in the flattened
/// upper-triangle order `(0,1), (0,2), …, (0,n−1), (1,2), …`.
pub fn pair_index(nvars: usize, x: usize, y: usize) -> usize {
    debug_assert!(x < y && y < nvars);
    x * (2 * nvars - x - 1) / 2 + (y - x - 1)
}

/// The pairs in [`pair_index`] order.
pub(crate) fn pair_list(nvars: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(num_pairs(nvars));
    for x in 0..nvars {
        for y in x + 1..nvars {
            out.push((x, y));
        }
    }
    out
}

/// The mask over `dom(w)` of values `w` may take jointly with `a = va`,
/// read from the pair table of `(a, w)` in either orientation (`a == w`
/// pins the singleton).
fn row_of(
    rel: &LocationRelations,
    nvars: usize,
    domains: &[usize],
    a: usize,
    va: usize,
    w: usize,
) -> u64 {
    if a == w {
        return 1u64 << va;
    }
    if a < w {
        rel.pairs[pair_index(nvars, a, w)][va]
    } else {
        let i = pair_index(nvars, w, a);
        let mut m = 0u64;
        for vw in 0..domains[w] {
            if rel.pairs[i][vw] >> va & 1 == 1 {
                m |= 1u64 << vw;
            }
        }
        m
    }
}

/// The cartesian environment conditioned on the joint value
/// `(x = vx, y = vy)`: every variable `w` is cut to the values
/// compatible with both anchors (its mask intersected with the pair rows
/// anchored at `x` and at `y`). `None` when some variable has no
/// compatible value — the joint denotes no concrete state.
pub(crate) fn conditioned_env(
    masks: &[u64],
    rel: &LocationRelations,
    domains: &[usize],
    x: usize,
    vx: usize,
    y: usize,
    vy: usize,
) -> Option<Vec<u64>> {
    let nvars = domains.len();
    let mut env = vec![0u64; nvars];
    for (w, slot) in env.iter_mut().enumerate() {
        let m = masks[w]
            & row_of(rel, nvars, domains, x, vx, w)
            & row_of(rel, nvars, domains, y, vy, w);
        if m == 0 {
            return None;
        }
        *slot = m;
    }
    Some(env)
}

/// One location of the solver state: projections plus pair tables, all
/// bottom (zero) until touched.
#[derive(Clone)]
struct RelState {
    masks: Vec<u64>,
    rel: LocationRelations,
}

/// Merges one conditioned contribution (anchored at pair `i = (x, y)`,
/// with post-values `mx` for `x` and `my` for `y`) into a location.
/// Returns whether anything grew.
fn merge_anchored(st: &mut RelState, i: usize, x: usize, y: usize, mx: u64, my: u64) -> bool {
    let mut changed = false;
    if st.masks[x] | mx != st.masks[x] {
        st.masks[x] |= mx;
        changed = true;
    }
    if st.masks[y] | my != st.masks[y] {
        st.masks[y] |= my;
        changed = true;
    }
    let rows = &mut st.rel.pairs[i];
    let mut bits = mx;
    while bits != 0 {
        let a = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        if rows[a] | my != rows[a] {
            rows[a] |= my;
            changed = true;
        }
    }
    changed
}

/// Runs the pair-relation analysis over the program and returns an
/// [`Invariant`] whose `relations` field carries the per-location pair
/// tables (projections land in the usual per-variable masks). Programs
/// with fewer than two variables fall back to the value-set analysis
/// with empty pair lists.
pub fn run_relational(prog: &Program) -> Invariant {
    let domains = &prog.domains;
    let nvars = domains.len();
    let nlocs = prog.num_locations();
    if nvars < 2 {
        let mut inv = run::<ValueSetDomain>(prog);
        inv.domain = DomainKind::Relational;
        inv.relations = Some(vec![LocationRelations { pairs: Vec::new() }; nlocs]);
        return inv;
    }
    let pairs = pair_list(nvars);
    let mut state: Vec<RelState> = (0..nlocs)
        .map(|_| RelState {
            masks: vec![0u64; nvars],
            rel: LocationRelations {
                pairs: pairs.iter().map(|&(x, _)| vec![0u64; domains[x]]).collect(),
            },
        })
        .collect();
    let mut stats = SolveStats::default();
    let mut on_list = vec![false; nlocs];
    let mut worklist = VecDeque::new();
    for init in &prog.inits {
        let l = prog.location_of(init);
        let st = &mut state[l];
        let mut changed = false;
        for (w, &v) in init.iter().enumerate() {
            if st.masks[w] | (1u64 << v) != st.masks[w] {
                st.masks[w] |= 1u64 << v;
                changed = true;
            }
        }
        for (i, &(x, y)) in pairs.iter().enumerate() {
            let row = &mut st.rel.pairs[i][init[x]];
            if *row | (1u64 << init[y]) != *row {
                *row |= 1u64 << init[y];
                changed = true;
            }
        }
        if changed && !on_list[l] {
            on_list[l] = true;
            worklist.push_back(l);
        }
    }
    while let Some(l) = worklist.pop_front() {
        on_list[l] = false;
        stats.iterations += 1;
        let cur = state[l].clone();
        for cmd in &prog.commands {
            for (i, &(x, y)) in pairs.iter().enumerate() {
                for vx in 0..domains[x] {
                    let mut joint = cur.rel.pairs[i][vx];
                    while joint != 0 {
                        let vy = joint.trailing_zeros() as usize;
                        joint &= joint - 1;
                        let Some(env) =
                            conditioned_env(&cur.masks, &cur.rel, domains, x, vx, y, vy)
                        else {
                            continue;
                        };
                        let Some(env_g) = assume::<ValueSetDomain>(&cmd.guard, &env, domains)
                        else {
                            continue;
                        };
                        for br in &cmd.branches {
                            stats.posts += 1;
                            let Some(env_b) = post_branch::<ValueSetDomain>(&env_g, br, domains)
                            else {
                                continue;
                            };
                            match prog.pc {
                                None => {
                                    stats.joins += 1;
                                    if merge_anchored(&mut state[0], i, x, y, env_b[x], env_b[y])
                                        && !on_list[0]
                                    {
                                        on_list[0] = true;
                                        worklist.push_back(0);
                                    }
                                }
                                Some(p) => {
                                    for l2 in 0..domains[p] {
                                        if env_b[p] >> l2 & 1 == 0 {
                                            continue;
                                        }
                                        let mx = if x == p { 1u64 << l2 } else { env_b[x] };
                                        let my = if y == p { 1u64 << l2 } else { env_b[y] };
                                        stats.joins += 1;
                                        if merge_anchored(&mut state[l2], i, x, y, mx, my)
                                            && !on_list[l2]
                                        {
                                            on_list[l2] = true;
                                            worklist.push_back(l2);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let (locations, relations) = state
        .into_iter()
        .map(|st| (super::solve::LocationInvariant { values: st.masks }, st.rel))
        .unzip();
    Invariant {
        domain: DomainKind::Relational,
        pc: prog.pc,
        var_domains: domains.clone(),
        locations,
        relations: Some(relations),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::super::examples;
    use super::super::ir::Guard;
    use super::super::solve::analyze;
    use super::*;
    use crate::system::Fairness;

    #[test]
    fn pair_index_is_a_bijection() {
        for n in 2..8 {
            let list = pair_list(n);
            assert_eq!(list.len(), num_pairs(n));
            for (i, &(x, y)) in list.iter().enumerate() {
                assert_eq!(pair_index(n, x, y), i, "n={n} pair ({x},{y})");
            }
        }
        assert_eq!(num_pairs(0), 0);
        assert_eq!(num_pairs(1), 0);
    }

    #[test]
    fn relational_proves_peterson_mutex() {
        let prog = examples::peterson_abs();
        let inv = analyze(&prog, DomainKind::Relational);
        // The critical location pc1 = 3 must know pc2 ≠ 3: the pair
        // (pc2, tb) pins tb = 1 whenever pc2 = 3, which kills the tb = 0
        // disjunct of enter1 — a correlation no cartesian domain keeps.
        assert!(inv.location_reachable(3));
        assert_eq!(inv.locations[3].values[1] & 0b1000, 0, "{inv:?}");
        let both = Guard::var_eq(0, 3).and(Guard::var_eq(1, 3));
        for l in 0..inv.locations.len() {
            assert_eq!(inv.guard_status(l, &both), Some(false), "location {l}");
        }
        // The value-set masks alone cannot do this (the honest gap).
        let vs = analyze(&prog, DomainKind::ValueSets);
        assert_ne!(vs.locations[3].values[1] & 0b1000, 0);
    }

    #[test]
    fn relational_proves_single_token_in_ring() {
        let prog = examples::token_ring_n(4);
        let inv = analyze(&prog, DomainKind::Relational);
        // At location tok0 = 1 the pair (tok0, tok1) excludes the joint
        // (1, 1): at most one token circulates.
        let both = Guard::var_eq(0, 1).and(Guard::var_eq(1, 1));
        for l in 0..inv.locations.len() {
            assert_eq!(inv.guard_status(l, &both), Some(false), "location {l}");
        }
        assert!(!inv.guard_feasible_rel(1, &both));
        // The cartesian masks lose the correlation.
        let vs = analyze(&prog, DomainKind::ValueSets);
        assert_eq!(vs.guard_status(1, &both), None);
    }

    #[test]
    fn single_variable_programs_degenerate_to_value_sets() {
        let prog = examples::token_ring_abs(true);
        let rel = analyze(&prog, DomainKind::Relational);
        let vs = analyze(&prog, DomainKind::ValueSets);
        assert_eq!(rel.domain, DomainKind::Relational);
        assert_eq!(rel.locations, vs.locations);
        let rels = rel.relations.as_ref().unwrap();
        assert!(rels.iter().all(|r| r.pairs.is_empty()));
    }

    #[test]
    fn relational_needs_no_widening() {
        for prog in [
            examples::peterson_abs(),
            examples::mux_sem_abs(Fairness::Strong),
            examples::dining_philosophers(3),
        ] {
            let inv = analyze(&prog, DomainKind::Relational);
            assert_eq!(inv.stats.widenings, 0);
        }
    }
}
