//! Independent re-verification of invariant certificates.
//!
//! The worklist solver *claims* its result is an inductive invariant;
//! these checkers re-establish the claim from the definition, so a solver
//! bug (a missed propagation, a bad join, an unsound widening) cannot
//! silently produce a certificate that downstream layers then trust:
//!
//! * [`certify`] re-checks inductiveness transition-by-transition on the
//!   concretized masks in the value-set domain: every initial valuation
//!   is in the invariant, and for every reachable location, command and
//!   branch, the abstract post of the location's mask environment lands
//!   inside the target locations' mask environments. It shares only the
//!   expression transfer functions with the solver — none of the
//!   worklist, join or widening machinery.
//! * [`certify_exhaustive`] goes further and uses *only* the concrete IR
//!   semantics: it enumerates every concrete valuation denoted by the
//!   invariant and steps it through every command, checking closure.
//!   Nothing abstract is trusted at all; a state-count budget keeps it
//!   test-sized.

use super::domain::{assume, full_mask, ValueSetDomain};
use super::ir::{eval_guard, Program};
use super::relation::{conditioned_env, num_pairs, pair_list, LocationRelations};
use super::solve::{post_branch, Invariant};
use std::fmt;

/// Why a certificate failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CertificateError {
    /// The invariant's shape does not match the program.
    ShapeMismatch,
    /// An initial valuation is not in the invariant.
    InitEscapes {
        /// Index into [`Program::inits`].
        init: usize,
    },
    /// A command branch leaves the invariant.
    NotInductive {
        /// Source location.
        location: usize,
        /// Offending command name.
        command: String,
        /// Offending branch index within the command.
        branch: usize,
    },
    /// [`certify_exhaustive`] would enumerate more states than allowed.
    BudgetExceeded,
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::ShapeMismatch => {
                write!(f, "invariant shape does not match the program")
            }
            CertificateError::InitEscapes { init } => {
                write!(f, "initial valuation #{init} escapes the invariant")
            }
            CertificateError::NotInductive {
                location,
                command,
                branch,
            } => write!(
                f,
                "command {command:?} branch {branch} leaves the invariant from location {location}"
            ),
            CertificateError::BudgetExceeded => {
                write!(f, "exhaustive certification exceeded its state budget")
            }
        }
    }
}

impl std::error::Error for CertificateError {}

fn shape_ok(prog: &Program, inv: &Invariant) -> bool {
    let cartesian = inv.pc == prog.pc
        && inv.var_domains == prog.domains
        && inv.locations.len() == prog.num_locations()
        && inv
            .locations
            .iter()
            .all(|loc| loc.values.len() == prog.domains.len());
    if !cartesian {
        return false;
    }
    match &inv.relations {
        None => true,
        Some(rels) => {
            let pairs = pair_list(prog.domains.len());
            rels.len() == prog.num_locations()
                && rels.iter().all(|rel| {
                    rel.pairs.len() == pairs.len()
                        && pairs.iter().zip(&rel.pairs).all(|(&(x, y), rows)| {
                            rows.len() == prog.domains[x]
                                && rows.iter().all(|&r| r & !full_mask(prog.domains[y]) == 0)
                        })
                })
        }
    }
}

/// Does the contribution (anchored at pair `i = (x, y)`, post-values
/// `mx`/`my`) escape the target location's masks or pair rows?
fn escapes_rel(
    target: &[u64],
    trel: &LocationRelations,
    i: usize,
    x: usize,
    y: usize,
    mx: u64,
    my: u64,
) -> bool {
    if mx & !target[x] != 0 || my & !target[y] != 0 {
        return true;
    }
    let mut bits = mx;
    while bits != 0 {
        let a = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        if my & !trel.pairs[i][a] != 0 {
            return true;
        }
    }
    false
}

/// Pair-conditioned inductiveness for relational certificates: mirrors
/// the anchored transfer of [`run_relational`](super::relation::run_relational)
/// while sharing only the expression-level transfer functions with it.
/// Every concrete transition from a denoted state is covered by the
/// conditioning of its pre-state's joint in every pair, and each
/// variable anchors some pair, so checking every anchored contribution
/// re-establishes closure of the full (masks + pairs) denotation.
fn certify_relational(
    prog: &Program,
    inv: &Invariant,
    rels: &[LocationRelations],
) -> Result<(), CertificateError> {
    let domains = &prog.domains;
    let pairs = pair_list(domains.len());
    for (l, loc) in inv.locations.iter().enumerate() {
        if !inv.location_reachable(l) {
            continue;
        }
        let masks: &[u64] = &loc.values;
        let rel = &rels[l];
        for cmd in &prog.commands {
            for (i, &(x, y)) in pairs.iter().enumerate() {
                for vx in 0..domains[x] {
                    let mut joint = rel.pairs[i][vx];
                    while joint != 0 {
                        let vy = joint.trailing_zeros() as usize;
                        joint &= joint - 1;
                        let Some(env) = conditioned_env(masks, rel, domains, x, vx, y, vy) else {
                            continue;
                        };
                        let Some(env_g) = assume::<ValueSetDomain>(&cmd.guard, &env, domains)
                        else {
                            continue;
                        };
                        for (bi, br) in cmd.branches.iter().enumerate() {
                            let Some(env_b) = post_branch::<ValueSetDomain>(&env_g, br, domains)
                            else {
                                continue;
                            };
                            let fail = || CertificateError::NotInductive {
                                location: l,
                                command: cmd.name.clone(),
                                branch: bi,
                            };
                            match prog.pc {
                                None => {
                                    if escapes_rel(
                                        &inv.locations[0].values,
                                        &rels[0],
                                        i,
                                        x,
                                        y,
                                        env_b[x],
                                        env_b[y],
                                    ) {
                                        return Err(fail());
                                    }
                                }
                                Some(p) => {
                                    for (l2, trel) in rels.iter().enumerate().take(domains[p]) {
                                        if env_b[p] >> l2 & 1 == 0 {
                                            continue;
                                        }
                                        let mx = if x == p { 1u64 << l2 } else { env_b[x] };
                                        let my = if y == p { 1u64 << l2 } else { env_b[y] };
                                        if escapes_rel(
                                            &inv.locations[l2].values,
                                            trel,
                                            i,
                                            x,
                                            y,
                                            mx,
                                            my,
                                        ) {
                                            return Err(fail());
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Re-verifies that the invariant is inductive, transition-by-transition,
/// in the value-set domain over the concretized masks.
///
/// # Errors
///
/// The first [`CertificateError`] found: a shape mismatch, an escaping
/// initial valuation, or a non-inductive location/command/branch triple.
pub fn certify(prog: &Program, inv: &Invariant) -> Result<(), CertificateError> {
    if !shape_ok(prog, inv) {
        return Err(CertificateError::ShapeMismatch);
    }
    for (i, init) in prog.inits.iter().enumerate() {
        if !inv.contains(init) {
            return Err(CertificateError::InitEscapes { init: i });
        }
    }
    if let Some(rels) = &inv.relations {
        if num_pairs(prog.domains.len()) > 0 {
            return certify_relational(prog, inv, rels);
        }
    }
    let domains = &prog.domains;
    for (l, loc) in inv.locations.iter().enumerate() {
        if !inv.location_reachable(l) {
            continue;
        }
        let env: &[u64] = &loc.values;
        for cmd in &prog.commands {
            let Some(env_g) = assume::<ValueSetDomain>(&cmd.guard, env, domains) else {
                continue;
            };
            for (bi, br) in cmd.branches.iter().enumerate() {
                let Some(env_b) = post_branch::<ValueSetDomain>(&env_g, br, domains) else {
                    continue;
                };
                let fail = || CertificateError::NotInductive {
                    location: l,
                    command: cmd.name.clone(),
                    branch: bi,
                };
                match prog.pc {
                    None => {
                        let target = &inv.locations[0].values;
                        if env_b.iter().zip(target).any(|(v, t)| v & !t != 0) {
                            return Err(fail());
                        }
                    }
                    Some(p) => {
                        for l2 in 0..domains[p] {
                            if env_b[p] >> l2 & 1 == 0 {
                                continue;
                            }
                            let target = &inv.locations[l2].values;
                            let escapes = env_b.iter().enumerate().any(|(x, v)| {
                                let v = if x == p { 1u64 << l2 } else { *v };
                                v & !target[x] != 0
                            });
                            if escapes {
                                return Err(fail());
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Iterates the concrete valuations denoted by one location's masks.
fn location_states(masks: &[u64], domains: &[usize]) -> Vec<Vec<usize>> {
    let value_lists: Vec<Vec<usize>> = masks
        .iter()
        .zip(domains)
        .map(|(&m, &d)| (0..d).filter(|&v| m >> v & 1 == 1).collect())
        .collect();
    if value_lists.iter().any(|vs| vs.is_empty()) {
        return Vec::new();
    }
    let mut out = vec![Vec::new()];
    for vs in &value_lists {
        let mut next = Vec::with_capacity(out.len() * vs.len());
        for prefix in &out {
            for &v in vs {
                let mut w = prefix.clone();
                w.push(v);
                next.push(w);
            }
        }
        out = next;
    }
    out
}

/// Fully concrete certification: enumerates every valuation denoted by
/// the invariant and checks that each enabled command branch stays
/// inside it. Uses only the IR's concrete semantics — independent of the
/// entire abstract machinery.
///
/// # Errors
///
/// [`CertificateError::BudgetExceeded`] when the invariant denotes more
/// than `budget` states; otherwise as [`certify`].
pub fn certify_exhaustive(
    prog: &Program,
    inv: &Invariant,
    budget: usize,
) -> Result<(), CertificateError> {
    if !shape_ok(prog, inv) {
        return Err(CertificateError::ShapeMismatch);
    }
    for (i, init) in prog.inits.iter().enumerate() {
        if !inv.contains(init) {
            return Err(CertificateError::InitEscapes { init: i });
        }
    }
    let mut total: usize = 0;
    for (l, loc) in inv.locations.iter().enumerate() {
        if !inv.location_reachable(l) {
            continue;
        }
        let denoted: usize = loc.values.iter().map(|m| m.count_ones() as usize).product();
        total = total.saturating_add(denoted);
        if total > budget {
            return Err(CertificateError::BudgetExceeded);
        }
        for vals in location_states(&loc.values, &prog.domains) {
            // A relational invariant denotes a subset of the cartesian
            // enumeration; valuations outside it are not in the
            // certificate and must not be stepped.
            if !inv.contains(&vals) {
                continue;
            }
            for cmd in &prog.commands {
                if !eval_guard(&cmd.guard, &vals) {
                    continue;
                }
                for (bi, br) in cmd.branches.iter().enumerate() {
                    let Some(next) = br.apply(&vals, &prog.domains) else {
                        continue;
                    };
                    if !inv.contains(&next) {
                        return Err(CertificateError::NotInductive {
                            location: l,
                            command: cmd.name.clone(),
                            branch: bi,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::examples;
    use super::super::solve::analyze;
    use super::super::DomainKind;
    use super::*;
    use crate::system::Fairness;

    #[test]
    fn paper_example_invariants_certify() {
        for (name, prog) in [
            ("mux_sem", examples::mux_sem_abs(Fairness::Strong)),
            ("token_ring", examples::token_ring_abs(true)),
            ("peterson", examples::peterson_abs()),
        ] {
            for kind in DomainKind::ALL {
                let inv = analyze(&prog, kind);
                certify(&prog, &inv).unwrap_or_else(|e| panic!("{name}/{kind:?}: {e}"));
                certify_exhaustive(&prog, &inv, 1 << 12)
                    .unwrap_or_else(|e| panic!("{name}/{kind:?} exhaustive: {e}"));
            }
        }
    }

    #[test]
    fn tampered_invariants_are_rejected() {
        let prog = examples::token_ring_abs(true);
        let good = analyze(&prog, DomainKind::ValueSets);
        certify(&prog, &good).unwrap();

        // Drop a reachable location entirely: the initial valuation (or
        // some transition into it) must escape.
        let mut missing_init = good.clone();
        let l0 = prog.location_of(&prog.inits[0]);
        for m in &mut missing_init.locations[l0].values {
            *m = 0;
        }
        assert_eq!(
            certify(&prog, &missing_init),
            Err(CertificateError::InitEscapes { init: 0 })
        );

        // Claim a reachable location is tighter than it is: some command
        // stepping into the shaved value breaks inductiveness.
        let mut shaved = good.clone();
        let victim = (0..shaved.locations.len())
            .find(|&l| l != l0 && shaved.location_reachable(l))
            .expect("a non-initial reachable location");
        for m in &mut shaved.locations[victim].values {
            *m = 0;
        }
        let abstract_verdict = certify(&prog, &shaved);
        let concrete_verdict = certify_exhaustive(&prog, &shaved, 1 << 12);
        assert!(
            matches!(abstract_verdict, Err(CertificateError::NotInductive { .. })),
            "{abstract_verdict:?}"
        );
        assert!(
            matches!(concrete_verdict, Err(CertificateError::NotInductive { .. })),
            "{concrete_verdict:?}"
        );

        // Shape mismatches are caught before anything else.
        let mut misshapen = good.clone();
        misshapen.locations.pop();
        assert_eq!(
            certify(&prog, &misshapen),
            Err(CertificateError::ShapeMismatch)
        );
    }

    #[test]
    fn tampered_relational_certificates_are_rejected() {
        let prog = examples::peterson_abs();
        let good = analyze(&prog, DomainKind::Relational);
        certify(&prog, &good).unwrap();
        certify_exhaustive(&prog, &good, 1 << 12).unwrap();

        // Claim a reachable location has no admissible joint values:
        // transitions into it escape the (now empty) pair rows.
        let mut shaved = good.clone();
        let victim = (1..shaved.locations.len())
            .find(|&l| shaved.location_reachable(l))
            .expect("a non-initial reachable location");
        for rows in &mut shaved.relations.as_mut().unwrap()[victim].pairs {
            for r in rows.iter_mut() {
                *r = 0;
            }
        }
        assert!(
            matches!(
                certify(&prog, &shaved),
                Err(CertificateError::NotInductive { .. })
            ),
            "{:?}",
            certify(&prog, &shaved)
        );
        assert!(matches!(
            certify_exhaustive(&prog, &shaved, 1 << 12),
            Err(CertificateError::NotInductive { .. })
        ));

        // Pair tables of the wrong shape are a shape mismatch.
        let mut misshapen = good.clone();
        misshapen.relations.as_mut().unwrap()[0].pairs.pop();
        assert_eq!(
            certify(&prog, &misshapen),
            Err(CertificateError::ShapeMismatch)
        );
    }

    #[test]
    fn exhaustive_budget_is_enforced() {
        let prog = examples::peterson_abs();
        let inv = analyze(&prog, DomainKind::ValueSets);
        assert_eq!(
            certify_exhaustive(&prog, &inv, 1),
            Err(CertificateError::BudgetExceeded)
        );
    }
}
