//! Abstract domains for the invariant engine.
//!
//! The three domains defined here are *cartesian* (one abstract value
//! per variable, no relations between variables — the pair-relation
//! domain lives in [`relation`](super::relation) on top of the value
//! sets) and share a single transfer-function
//! language: abstract values are lifted into [`AbsInt`] — a bounded
//! integer-set abstraction — where expression arithmetic and guard
//! refinement happen, then cut back down to the domain
//! ([`Domain::lift`] / [`Domain::cut`]). This keeps the domains honest
//! about one semantics and keeps each domain implementation tiny:
//!
//! * [`ConstDomain`] — flat constant propagation (`⊥ ⊑ k ⊑ ⊤`);
//! * [`IntervalDomain`] — intervals clipped to the declared domain, with
//!   widening to the domain bounds;
//! * [`ValueSetDomain`] — per-variable value sets as 64-bit masks (the
//!   most precise cartesian abstraction of a `≤ 64`-value domain).

use super::ir::{Cmp, Expr, Guard};

/// Cap on explicit value sets inside [`AbsInt`]; larger sets collapse to
/// their interval hull.
const SET_CAP: usize = 64;

/// The mask of a full domain `{0, …, dom−1}` (`dom ≤ 64`).
pub fn full_mask(dom: usize) -> u64 {
    if dom >= 64 {
        u64::MAX
    } else {
        (1u64 << dom) - 1
    }
}

/// A bounded abstraction of a set of integers: bottom, an explicit sorted
/// set of at most [`SET_CAP`] values, or an interval. This is the lingua
/// franca of the transfer functions — every [`Domain`] lifts into it and
/// cuts back out of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsInt {
    /// The empty set.
    Bot,
    /// A sorted, deduplicated, non-empty set of values.
    Vals(Vec<i64>),
    /// All integers in `lo..=hi` (`lo ≤ hi`).
    Range(i64, i64),
}

impl AbsInt {
    /// The singleton `{v}`.
    pub fn singleton(v: i64) -> AbsInt {
        AbsInt::Vals(vec![v])
    }

    /// Normalizes a value list (sorts, dedups, collapses to a hull past
    /// the cap).
    pub fn from_vals(mut vs: Vec<i64>) -> AbsInt {
        vs.sort_unstable();
        vs.dedup();
        match vs.len() {
            0 => AbsInt::Bot,
            n if n > SET_CAP => AbsInt::Range(vs[0], vs[n - 1]),
            _ => AbsInt::Vals(vs),
        }
    }

    /// `lo..=hi`, or bottom when empty.
    pub fn range(lo: i64, hi: i64) -> AbsInt {
        if lo > hi {
            AbsInt::Bot
        } else {
            AbsInt::Range(lo, hi)
        }
    }

    /// The set of values in a mask (bit `i` set ⇒ value `i` present).
    pub fn from_mask(mask: u64) -> AbsInt {
        if mask == 0 {
            return AbsInt::Bot;
        }
        AbsInt::Vals((0..64).filter(|i| mask >> i & 1 == 1).collect())
    }

    /// The mask of values within `{0, …, dom−1}`.
    pub fn to_mask(&self, dom: usize) -> u64 {
        match self {
            AbsInt::Bot => 0,
            AbsInt::Vals(vs) => vs
                .iter()
                .filter(|&&v| v >= 0 && v < dom as i64)
                .fold(0u64, |m, &v| m | 1u64 << v),
            AbsInt::Range(lo, hi) => {
                let lo = (*lo).max(0);
                let hi = (*hi).min(dom as i64 - 1);
                (lo..=hi).fold(0u64, |m, v| m | 1u64 << v)
            }
        }
    }

    /// Smallest member, if any.
    pub fn min(&self) -> Option<i64> {
        match self {
            AbsInt::Bot => None,
            AbsInt::Vals(vs) => Some(vs[0]),
            AbsInt::Range(lo, _) => Some(*lo),
        }
    }

    /// Largest member, if any.
    pub fn max(&self) -> Option<i64> {
        match self {
            AbsInt::Bot => None,
            AbsInt::Vals(vs) => Some(*vs.last().unwrap()),
            AbsInt::Range(_, hi) => Some(*hi),
        }
    }

    /// Membership test.
    pub fn contains(&self, v: i64) -> bool {
        match self {
            AbsInt::Bot => false,
            AbsInt::Vals(vs) => vs.binary_search(&v).is_ok(),
            AbsInt::Range(lo, hi) => *lo <= v && v <= *hi,
        }
    }

    fn binop(
        a: &AbsInt,
        b: &AbsInt,
        f: impl Fn(i64, i64) -> i64,
        hull: impl Fn(i64, i64, i64, i64) -> (i64, i64),
    ) -> AbsInt {
        match (a, b) {
            (AbsInt::Bot, _) | (_, AbsInt::Bot) => AbsInt::Bot,
            (AbsInt::Vals(xs), AbsInt::Vals(ys)) if xs.len() * ys.len() <= 4 * SET_CAP => {
                let mut out = Vec::with_capacity(xs.len() * ys.len());
                for &x in xs {
                    for &y in ys {
                        out.push(f(x, y));
                    }
                }
                AbsInt::from_vals(out)
            }
            _ => {
                let (alo, ahi) = (a.min().unwrap(), a.max().unwrap());
                let (blo, bhi) = (b.min().unwrap(), b.max().unwrap());
                let (lo, hi) = hull(alo, ahi, blo, bhi);
                AbsInt::range(lo, hi)
            }
        }
    }

    /// Abstract addition.
    pub fn add(a: &AbsInt, b: &AbsInt) -> AbsInt {
        AbsInt::binop(
            a,
            b,
            |x, y| x + y,
            |alo, ahi, blo, bhi| (alo + blo, ahi + bhi),
        )
    }

    /// Abstract subtraction.
    pub fn sub(a: &AbsInt, b: &AbsInt) -> AbsInt {
        AbsInt::binop(
            a,
            b,
            |x, y| x - y,
            |alo, ahi, blo, bhi| (alo - bhi, ahi - blo),
        )
    }

    /// Abstract multiplication.
    pub fn mul(a: &AbsInt, b: &AbsInt) -> AbsInt {
        AbsInt::binop(
            a,
            b,
            |x, y| x * y,
            |alo, ahi, blo, bhi| {
                let corners = [alo * blo, alo * bhi, ahi * blo, ahi * bhi];
                (
                    *corners.iter().min().unwrap(),
                    *corners.iter().max().unwrap(),
                )
            },
        )
    }

    /// Abstract Euclidean remainder modulo a positive constant.
    pub fn modm(a: &AbsInt, m: i64) -> AbsInt {
        debug_assert!(m > 0);
        match a {
            AbsInt::Bot => AbsInt::Bot,
            AbsInt::Vals(vs) => AbsInt::from_vals(vs.iter().map(|v| v.rem_euclid(m)).collect()),
            AbsInt::Range(lo, hi) => {
                if hi - lo + 1 >= m {
                    return AbsInt::range(0, m - 1);
                }
                let (rl, rh) = (lo.rem_euclid(m), hi.rem_euclid(m));
                if rl <= rh {
                    AbsInt::range(rl, rh)
                } else {
                    AbsInt::range(0, m - 1) // the range wraps around 0
                }
            }
        }
    }

    /// May `a op b` hold for some `(x, y) ∈ a × b`? (Over-approximate:
    /// `true` may be spurious, `false` never is.)
    pub fn may_hold(op: Cmp, a: &AbsInt, b: &AbsInt) -> bool {
        let (Some(alo), Some(ahi), Some(blo), Some(bhi)) = (a.min(), a.max(), b.min(), b.max())
        else {
            return false;
        };
        match op {
            Cmp::Lt => alo < bhi,
            Cmp::Le => alo <= bhi,
            Cmp::Gt => ahi > blo,
            Cmp::Ge => ahi >= blo,
            Cmp::Ne => !(alo == ahi && blo == bhi && alo == blo),
            Cmp::Eq => match (a, b) {
                (AbsInt::Vals(xs), AbsInt::Vals(ys)) => {
                    xs.iter().any(|x| ys.binary_search(x).is_ok())
                }
                (AbsInt::Vals(xs), _) => xs.iter().any(|x| b.contains(*x)),
                (_, AbsInt::Vals(ys)) => ys.iter().any(|y| a.contains(*y)),
                _ => alo.max(blo) <= ahi.min(bhi),
            },
        }
    }

    fn clamp_max(&self, hi: i64) -> AbsInt {
        match self {
            AbsInt::Bot => AbsInt::Bot,
            AbsInt::Vals(vs) => {
                AbsInt::from_vals(vs.iter().copied().filter(|&v| v <= hi).collect())
            }
            AbsInt::Range(l, h) => AbsInt::range(*l, (*h).min(hi)),
        }
    }

    fn clamp_min(&self, lo: i64) -> AbsInt {
        match self {
            AbsInt::Bot => AbsInt::Bot,
            AbsInt::Vals(vs) => {
                AbsInt::from_vals(vs.iter().copied().filter(|&v| v >= lo).collect())
            }
            AbsInt::Range(l, h) => AbsInt::range((*l).max(lo), *h),
        }
    }

    /// Set intersection (exact on value sets, hull-intersection on
    /// ranges).
    pub fn intersect(a: &AbsInt, b: &AbsInt) -> AbsInt {
        match (a, b) {
            (AbsInt::Bot, _) | (_, AbsInt::Bot) => AbsInt::Bot,
            (AbsInt::Vals(xs), _) => {
                AbsInt::from_vals(xs.iter().copied().filter(|&x| b.contains(x)).collect())
            }
            (_, AbsInt::Vals(ys)) => {
                AbsInt::from_vals(ys.iter().copied().filter(|&y| a.contains(y)).collect())
            }
            (AbsInt::Range(al, ah), AbsInt::Range(bl, bh)) => {
                AbsInt::range(*al.max(bl), *ah.min(bh))
            }
        }
    }

    /// The subset of `a` whose elements can satisfy `x op y` for *some*
    /// `y ∈ b` (sound guard refinement: never drops a satisfying value).
    pub fn refine(op: Cmp, a: &AbsInt, b: &AbsInt) -> AbsInt {
        if matches!(a, AbsInt::Bot) || matches!(b, AbsInt::Bot) {
            return AbsInt::Bot;
        }
        match op {
            Cmp::Eq => AbsInt::intersect(a, b),
            Cmp::Ne => match b {
                AbsInt::Vals(ys) if ys.len() == 1 => {
                    let c = ys[0];
                    match a {
                        AbsInt::Vals(xs) => {
                            AbsInt::from_vals(xs.iter().copied().filter(|&x| x != c).collect())
                        }
                        AbsInt::Range(lo, hi) if *lo == *hi && *lo == c => AbsInt::Bot,
                        AbsInt::Range(lo, hi) if *lo == c => AbsInt::range(lo + 1, *hi),
                        AbsInt::Range(lo, hi) if *hi == c => AbsInt::range(*lo, hi - 1),
                        other => other.clone(),
                    }
                }
                _ => a.clone(),
            },
            Cmp::Lt => a.clamp_max(b.max().unwrap() - 1),
            Cmp::Le => a.clamp_max(b.max().unwrap()),
            Cmp::Gt => a.clamp_min(b.min().unwrap() + 1),
            Cmp::Ge => a.clamp_min(b.min().unwrap()),
        }
    }
}

/// Which abstract domain to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainKind {
    /// Flat constant propagation.
    Constants,
    /// Intervals clipped to the declared domain, with widening.
    Intervals,
    /// Per-variable value sets (64-bit masks).
    ValueSets,
    /// Pair relations: joint value sets for every variable pair on top of
    /// the per-variable masks (see [`relation`](super::relation)).
    Relational,
}

impl DomainKind {
    /// All domains, in increasing precision order.
    pub const ALL: [DomainKind; 4] = [
        DomainKind::Constants,
        DomainKind::Intervals,
        DomainKind::ValueSets,
        DomainKind::Relational,
    ];

    /// The cartesian (non-relational) domains, in increasing precision
    /// order — the subset whose invariants are plain per-variable masks.
    pub const CARTESIAN: [DomainKind; 3] = [
        DomainKind::Constants,
        DomainKind::Intervals,
        DomainKind::ValueSets,
    ];

    /// A stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DomainKind::Constants => "constants",
            DomainKind::Intervals => "intervals",
            DomainKind::ValueSets => "value-sets",
            DomainKind::Relational => "relational",
        }
    }
}

/// A cartesian abstract domain over one finite-domain variable.
///
/// `dom` parameters are the declared domain size of the variable the
/// value abstracts; every abstract value denotes a subset of
/// `{0, …, dom−1}`.
pub trait Domain {
    /// The abstract value type.
    type Val: Clone + PartialEq + std::fmt::Debug;
    /// The corresponding [`DomainKind`] tag.
    const KIND: DomainKind;
    /// The empty set.
    fn bottom() -> Self::Val;
    /// Is this the empty set?
    fn is_bottom(v: &Self::Val) -> bool;
    /// The full domain `{0, …, dom−1}`.
    fn top(dom: usize) -> Self::Val;
    /// The singleton `{x}`.
    fn singleton(x: usize) -> Self::Val;
    /// Least upper bound.
    fn join(a: &Self::Val, b: &Self::Val, dom: usize) -> Self::Val;
    /// Widening (defaults to join; intervals jump to the domain bounds).
    fn widen(a: &Self::Val, b: &Self::Val, dom: usize) -> Self::Val {
        Self::join(a, b, dom)
    }
    /// Partial-order test `a ⊑ b`.
    fn leq(a: &Self::Val, b: &Self::Val) -> bool;
    /// Lifts into the shared transfer-function abstraction.
    fn lift(v: &Self::Val, dom: usize) -> AbsInt;
    /// Cuts a transfer result back down, restricted to `{0, …, dom−1}`.
    fn cut(ai: &AbsInt, dom: usize) -> Self::Val;
    /// The concretization as a bit mask over `{0, …, dom−1}`.
    fn mask(v: &Self::Val, dom: usize) -> u64;
}

/// The flat lattice of constant propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flat {
    /// No value.
    Bot,
    /// Exactly this value.
    Val(usize),
    /// Any value in the domain.
    Top,
}

/// Flat constant propagation.
pub struct ConstDomain;

impl Domain for ConstDomain {
    type Val = Flat;
    const KIND: DomainKind = DomainKind::Constants;

    fn bottom() -> Flat {
        Flat::Bot
    }

    fn is_bottom(v: &Flat) -> bool {
        matches!(v, Flat::Bot)
    }

    fn top(dom: usize) -> Flat {
        if dom == 1 {
            Flat::Val(0)
        } else {
            Flat::Top
        }
    }

    fn singleton(x: usize) -> Flat {
        Flat::Val(x)
    }

    fn join(a: &Flat, b: &Flat, _dom: usize) -> Flat {
        match (a, b) {
            (Flat::Bot, v) | (v, Flat::Bot) => *v,
            (Flat::Val(x), Flat::Val(y)) if x == y => Flat::Val(*x),
            _ => Flat::Top,
        }
    }

    fn leq(a: &Flat, b: &Flat) -> bool {
        match (a, b) {
            (Flat::Bot, _) => true,
            (_, Flat::Top) => true,
            (Flat::Val(x), Flat::Val(y)) => x == y,
            _ => false,
        }
    }

    fn lift(v: &Flat, dom: usize) -> AbsInt {
        match v {
            Flat::Bot => AbsInt::Bot,
            Flat::Val(x) => AbsInt::singleton(*x as i64),
            Flat::Top => AbsInt::range(0, dom as i64 - 1),
        }
    }

    fn cut(ai: &AbsInt, dom: usize) -> Flat {
        let mask = ai.to_mask(dom);
        match mask.count_ones() {
            0 => Flat::Bot,
            1 => Flat::Val(mask.trailing_zeros() as usize),
            _ => Flat::Top,
        }
    }

    fn mask(v: &Flat, dom: usize) -> u64 {
        match v {
            Flat::Bot => 0,
            Flat::Val(x) => {
                if *x < dom {
                    1u64 << x
                } else {
                    0
                }
            }
            Flat::Top => full_mask(dom),
        }
    }
}

/// Intervals clipped to the declared domain (`None` is bottom).
pub struct IntervalDomain;

impl Domain for IntervalDomain {
    type Val = Option<(usize, usize)>;
    const KIND: DomainKind = DomainKind::Intervals;

    fn bottom() -> Self::Val {
        None
    }

    fn is_bottom(v: &Self::Val) -> bool {
        v.is_none()
    }

    fn top(dom: usize) -> Self::Val {
        Some((0, dom - 1))
    }

    fn singleton(x: usize) -> Self::Val {
        Some((x, x))
    }

    fn join(a: &Self::Val, b: &Self::Val, _dom: usize) -> Self::Val {
        match (a, b) {
            (None, v) | (v, None) => *v,
            (Some((al, ah)), Some((bl, bh))) => Some(((*al).min(*bl), (*ah).max(*bh))),
        }
    }

    fn widen(a: &Self::Val, b: &Self::Val, dom: usize) -> Self::Val {
        match (a, b) {
            (None, v) | (v, None) => *v,
            (Some((al, ah)), Some((bl, bh))) => {
                // Unstable bounds jump straight to the declared domain
                // bounds (the classic interval widening, with the clip
                // playing the role of ±∞).
                let lo = if bl < al { 0 } else { *al };
                let hi = if bh > ah { dom - 1 } else { *ah };
                Some((lo, hi))
            }
        }
    }

    fn leq(a: &Self::Val, b: &Self::Val) -> bool {
        match (a, b) {
            (None, _) => true,
            (_, None) => false,
            (Some((al, ah)), Some((bl, bh))) => bl <= al && ah <= bh,
        }
    }

    fn lift(v: &Self::Val, _dom: usize) -> AbsInt {
        match v {
            None => AbsInt::Bot,
            Some((lo, hi)) => AbsInt::range(*lo as i64, *hi as i64),
        }
    }

    fn cut(ai: &AbsInt, dom: usize) -> Self::Val {
        // Take the hull of the in-domain part (precise for value sets:
        // {0, 5} cut to dom 3 is [0, 0], not [0, 2]).
        let mask = ai.to_mask(dom);
        if mask == 0 {
            return None;
        }
        let lo = mask.trailing_zeros() as usize;
        let hi = 63 - mask.leading_zeros() as usize;
        Some((lo, hi))
    }

    fn mask(v: &Self::Val, dom: usize) -> u64 {
        match v {
            None => 0,
            Some((lo, hi)) => {
                let hi = (*hi).min(dom - 1);
                (*lo..=hi).fold(0u64, |m, x| m | 1u64 << x)
            }
        }
    }
}

/// Per-variable value sets as 64-bit masks (bit `i` ⇔ value `i`). The
/// most precise cartesian domain for declared domains of at most 64
/// values; no widening needed (the lattice has height `dom`).
pub struct ValueSetDomain;

impl Domain for ValueSetDomain {
    type Val = u64;
    const KIND: DomainKind = DomainKind::ValueSets;

    fn bottom() -> u64 {
        0
    }

    fn is_bottom(v: &u64) -> bool {
        *v == 0
    }

    fn top(dom: usize) -> u64 {
        full_mask(dom)
    }

    fn singleton(x: usize) -> u64 {
        1u64 << x
    }

    fn join(a: &u64, b: &u64, _dom: usize) -> u64 {
        a | b
    }

    fn leq(a: &u64, b: &u64) -> bool {
        a & !b == 0
    }

    fn lift(v: &u64, _dom: usize) -> AbsInt {
        AbsInt::from_mask(*v)
    }

    fn cut(ai: &AbsInt, dom: usize) -> u64 {
        ai.to_mask(dom)
    }

    fn mask(v: &u64, dom: usize) -> u64 {
        v & full_mask(dom)
    }
}

/// Abstractly evaluates an expression in an environment of per-variable
/// abstract values.
pub fn eval_expr_abs<D: Domain>(e: &Expr, env: &[D::Val], domains: &[usize]) -> AbsInt {
    match e {
        Expr::Const(k) => AbsInt::singleton(*k),
        Expr::Var(i) => D::lift(&env[*i], domains[*i]),
        Expr::Add(a, b) => AbsInt::add(
            &eval_expr_abs::<D>(a, env, domains),
            &eval_expr_abs::<D>(b, env, domains),
        ),
        Expr::Sub(a, b) => AbsInt::sub(
            &eval_expr_abs::<D>(a, env, domains),
            &eval_expr_abs::<D>(b, env, domains),
        ),
        Expr::Mul(a, b) => AbsInt::mul(
            &eval_expr_abs::<D>(a, env, domains),
            &eval_expr_abs::<D>(b, env, domains),
        ),
        Expr::Mod(a, m) => AbsInt::modm(&eval_expr_abs::<D>(a, env, domains), *m as i64),
    }
}

fn assume_into<D: Domain>(g: &Guard, env: &mut [D::Val], domains: &[usize]) -> bool {
    match g {
        Guard::True => true,
        Guard::False => false,
        Guard::Not(inner) => assume_into::<D>(&inner.negate(), env, domains),
        Guard::And(a, b) => assume_into::<D>(a, env, domains) && assume_into::<D>(b, env, domains),
        Guard::Or(a, b) => {
            let mut left = env.to_vec();
            let lok = assume_into::<D>(a, &mut left, domains);
            let mut right = env.to_vec();
            let rok = assume_into::<D>(b, &mut right, domains);
            match (lok, rok) {
                (false, false) => false,
                (true, false) => {
                    env.clone_from_slice(&left);
                    true
                }
                (false, true) => {
                    env.clone_from_slice(&right);
                    true
                }
                (true, true) => {
                    for (i, slot) in env.iter_mut().enumerate() {
                        *slot = D::join(&left[i], &right[i], domains[i]);
                    }
                    true
                }
            }
        }
        Guard::Cmp(op, ea, eb) => {
            let a = eval_expr_abs::<D>(ea, env, domains);
            let b = eval_expr_abs::<D>(eb, env, domains);
            if !AbsInt::may_hold(*op, &a, &b) {
                return false;
            }
            if let Expr::Var(x) = ea {
                let v = D::cut(&AbsInt::refine(*op, &a, &b), domains[*x]);
                if D::is_bottom(&v) {
                    return false;
                }
                env[*x] = v;
            }
            if let Expr::Var(y) = eb {
                let v = D::cut(&AbsInt::refine(op.flip(), &b, &a), domains[*y]);
                if D::is_bottom(&v) {
                    return false;
                }
                env[*y] = v;
            }
            true
        }
    }
}

/// Restricts `env` to the states that may satisfy `g`; `None` when the
/// guard is abstractly infeasible. Sound: every concrete state in `env`
/// satisfying `g` survives.
pub fn assume<D: Domain>(g: &Guard, env: &[D::Val], domains: &[usize]) -> Option<Vec<D::Val>> {
    let mut out = env.to_vec();
    if assume_into::<D>(g, &mut out, domains) {
        Some(out)
    } else {
        None
    }
}

/// Three-valued guard evaluation over an abstract environment:
/// `Some(true)` — every state satisfies `g`; `Some(false)` — no state
/// does; `None` — undetermined.
pub fn guard_status<D: Domain>(g: &Guard, env: &[D::Val], domains: &[usize]) -> Option<bool> {
    let can_true = assume::<D>(g, env, domains).is_some();
    let can_false = assume::<D>(&g.negate(), env, domains).is_some();
    match (can_true, can_false) {
        (true, true) => None,
        (true, false) => Some(true),
        // (false, false) only for a bottom environment — report "never".
        (false, _) => Some(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absint_arithmetic_is_exact_on_small_sets() {
        let a = AbsInt::from_vals(vec![1, 3]);
        let b = AbsInt::from_vals(vec![0, 2]);
        assert_eq!(AbsInt::add(&a, &b), AbsInt::from_vals(vec![1, 3, 5]));
        assert_eq!(AbsInt::sub(&a, &b), AbsInt::from_vals(vec![-1, 1, 3]));
        assert_eq!(AbsInt::mul(&a, &b), AbsInt::from_vals(vec![0, 2, 6]));
        assert_eq!(AbsInt::modm(&a, 2), AbsInt::singleton(1));
    }

    #[test]
    fn absint_range_arithmetic_is_sound() {
        let a = AbsInt::range(1, 3);
        let b = AbsInt::range(-2, 2);
        let sum = AbsInt::add(&a, &b);
        let prod = AbsInt::mul(&a, &b);
        for x in 1..=3 {
            for y in -2..=2 {
                assert!(sum.contains(x + y), "{x}+{y}");
                assert!(prod.contains(x * y), "{x}*{y}");
            }
        }
        // Wrapping mod collapses to the full remainder range.
        assert_eq!(AbsInt::modm(&AbsInt::range(2, 4), 4), AbsInt::range(0, 3));
        // Non-wrapping mod stays tight.
        assert_eq!(AbsInt::modm(&AbsInt::range(5, 6), 4), AbsInt::range(1, 2));
    }

    #[test]
    fn may_hold_never_misses_a_witness() {
        let sets = [
            AbsInt::Bot,
            AbsInt::singleton(1),
            AbsInt::from_vals(vec![0, 2]),
            AbsInt::range(1, 3),
        ];
        for a in &sets {
            for b in &sets {
                for op in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
                    let concrete = (0..4)
                        .any(|x| (0..4).any(|y| a.contains(x) && b.contains(y) && op.eval(x, y)));
                    if concrete {
                        assert!(AbsInt::may_hold(op, a, b), "{op:?} {a:?} {b:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn refine_keeps_every_satisfying_value() {
        let sets = [
            AbsInt::singleton(2),
            AbsInt::from_vals(vec![0, 3]),
            AbsInt::range(0, 3),
        ];
        for a in &sets {
            for b in &sets {
                for op in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
                    let r = AbsInt::refine(op, a, b);
                    for x in 0..4 {
                        let sat = a.contains(x) && (0..4).any(|y| b.contains(y) && op.eval(x, y));
                        if sat {
                            assert!(r.contains(x), "{op:?} {a:?} {b:?} lost {x}");
                        }
                    }
                }
            }
        }
    }

    fn vs_env(masks: &[u64]) -> Vec<u64> {
        masks.to_vec()
    }

    #[test]
    fn assume_refines_variables() {
        let domains = &[4, 4];
        // x ∈ {0..3}, y ∈ {0..3}; assume x < y.
        let env = vs_env(&[0b1111, 0b1111]);
        let out =
            assume::<ValueSetDomain>(&Guard::lt(Expr::v(0), Expr::v(1)), &env, domains).unwrap();
        assert_eq!(out[0], 0b0111); // x ≤ 2
        assert_eq!(out[1], 0b1110); // y ≥ 1
                                    // x == 2 ∧ x == 3 is infeasible.
        assert!(assume::<ValueSetDomain>(
            &Guard::var_eq(0, 2).and(Guard::var_eq(0, 3)),
            &env,
            domains,
        )
        .is_none());
        // Or joins both sides.
        let out =
            assume::<ValueSetDomain>(&Guard::var_eq(0, 1).or(Guard::var_eq(0, 3)), &env, domains)
                .unwrap();
        assert_eq!(out[0], 0b1010);
    }

    #[test]
    fn guard_status_is_three_valued() {
        let domains = &[4];
        let env = vs_env(&[0b0011]); // x ∈ {0, 1}
        assert_eq!(
            guard_status::<ValueSetDomain>(&Guard::lt(Expr::v(0), Expr::c(2)), &env, domains),
            Some(true)
        );
        assert_eq!(
            guard_status::<ValueSetDomain>(&Guard::var_eq(0, 3), &env, domains),
            Some(false)
        );
        assert_eq!(
            guard_status::<ValueSetDomain>(&Guard::var_eq(0, 1), &env, domains),
            None
        );
    }

    #[test]
    fn interval_widening_hits_domain_bounds() {
        let old = Some((1, 2));
        let grown = Some((1, 3));
        assert_eq!(IntervalDomain::widen(&old, &grown, 10), Some((1, 9)));
        let shrunk_low = Some((0, 2));
        assert_eq!(IntervalDomain::widen(&old, &shrunk_low, 10), Some((0, 2)));
        assert_eq!(IntervalDomain::widen(&old, &old, 10), old);
    }

    #[test]
    fn cut_is_precise_per_domain() {
        let ai = AbsInt::from_vals(vec![0, 5]);
        assert_eq!(ConstDomain::cut(&ai, 3), Flat::Val(0));
        assert_eq!(IntervalDomain::cut(&ai, 3), Some((0, 0)));
        assert_eq!(ValueSetDomain::cut(&ai, 3), 0b001);
        assert_eq!(ConstDomain::cut(&ai, 6), Flat::Top);
        assert_eq!(IntervalDomain::cut(&ai, 6), Some((0, 5)));
        assert_eq!(ValueSetDomain::cut(&ai, 6), 0b100001);
    }
}
