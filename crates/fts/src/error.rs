//! Error types of the fts crate, collected in one place.
//!
//! [`SystemError`] (structural problems in an explicit system) and
//! [`BuildError`] (guarded-command programs that cannot be enumerated)
//! live next to their producers and are re-exported here; [`CheckError`]
//! covers the model checker's own preconditions, so that handing an
//! invalid system or a property over the wrong alphabet to
//! [`crate::checker::verify`] is a recoverable error rather than a panic.

use std::fmt;

pub use crate::builder::BuildError;
pub use crate::system::SystemError;

/// Errors from [`crate::checker::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// The transition system failed [`crate::system::TransitionSystem::validate`].
    InvalidSystem(SystemError),
    /// The system and the property observe different alphabets.
    AlphabetMismatch,
    /// The declarative program failed [`crate::absint::Program::validate`]
    /// (message of the underlying [`crate::absint::IrError`]).
    InvalidProgram(String),
    /// The declarative program could not be enumerated (message of the
    /// underlying [`BuildError`]).
    BuildFailed(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::InvalidSystem(e) => write!(f, "transition system invalid: {e}"),
            CheckError::AlphabetMismatch => {
                write!(f, "system and property must share an alphabet")
            }
            CheckError::InvalidProgram(msg) => write!(f, "program invalid: {msg}"),
            CheckError::BuildFailed(msg) => write!(f, "program build failed: {msg}"),
        }
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckError::InvalidSystem(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CheckError::AlphabetMismatch
            .to_string()
            .contains("alphabet"));
        let e = CheckError::InvalidSystem(SystemError::NoInitialState);
        assert!(e.to_string().contains("invalid"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
