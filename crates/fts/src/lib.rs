#![warn(missing_docs)]

//! Fair transition systems and a model checker for hierarchy properties —
//! the paper's program-facing side.
//!
//! The paper motivates every class with program requirements: mutual
//! exclusion (safety), accessibility (response/recurrence), weak fairness
//! (recurrence), strong fairness (simple reactivity). This crate provides:
//!
//! * [`system::TransitionSystem`] — explicit-state fair transition systems
//!   in the style of \[MP83]: named transitions with optional *weak*
//!   (justice) or *strong* (compassion) fairness, and per-state
//!   observations over an alphabet;
//! * [`checker`] — a model checker deciding whether every fair computation
//!   satisfies a property given as a deterministic ω-automaton, by
//!   searching the product for a fair counterexample cycle (iterated SCC
//!   refinement, the same algorithm family as Streett emptiness);
//! * [`programs`] — the paper's example programs: Peterson's mutual
//!   exclusion, a semaphore with strong fairness, and a token ring;
//! * [`builder`] — a guarded-command builder: variables over finite
//!   domains plus guarded commands, compiled to an explicit system;
//! * [`absint`] — an abstract-interpretation engine over a declarative
//!   program IR: per-location invariant certificates, an independent
//!   certificate checker, and the invariant-first checking mode
//!   [`checker::check_with_invariants`] that discharges safety
//!   properties without building the product.

pub mod absint;
pub mod builder;
pub mod checker;
pub mod error;
pub mod programs;
pub mod system;

pub use error::CheckError;
