//! A guarded-command builder for fair transition systems.
//!
//! Programs in the paper's \[MP83] style are written as variables over
//! finite domains plus guarded commands; the builder enumerates the state
//! space and produces an explicit [`TransitionSystem`]:
//!
//! ```
//! use hierarchy_automata::prelude::*;
//! use hierarchy_fts::builder::ProgramBuilder;
//! use hierarchy_fts::system::Fairness;
//!
//! // A one-bit blinker: x alternates when `toggle` fires.
//! let sigma = Alphabet::of_propositions(["x"]).unwrap();
//! let mut p = ProgramBuilder::new(&sigma);
//! let x = p.var("x", 2);
//! p.init(&[0]);
//! p.observe(move |vals, alphabet| alphabet.valuation_symbol(&[vals[x] == 1]));
//! p.command("toggle", Fairness::Weak, |_| true, move |vals| {
//!     let mut next = vals.to_vec();
//!     next[x] = 1 - vals[x];
//!     vec![next]
//! });
//! p.command("idle", Fairness::None, |_| true, |vals| vec![vals.to_vec()]);
//! let ts = p.build().unwrap();
//! assert_eq!(ts.num_states(), 2);
//! ```

use crate::system::{Fairness, SystemError, TransitionSystem};
use hierarchy_automata::alphabet::{Alphabet, Symbol};
use std::fmt;

type Guard = Box<dyn Fn(&[usize]) -> bool>;
type Update = Box<dyn Fn(&[usize]) -> Vec<Vec<usize>>>;
type Observe = Box<dyn Fn(&[usize], &Alphabet) -> Symbol>;

struct Command {
    name: String,
    fairness: Fairness,
    guard: Guard,
    update: Update,
}

/// Builds a [`TransitionSystem`] from finite-domain variables and guarded
/// commands.
pub struct ProgramBuilder {
    alphabet: Alphabet,
    var_names: Vec<String>,
    domains: Vec<usize>,
    inits: Vec<Vec<usize>>,
    observe: Option<Observe>,
    commands: Vec<Command>,
}

/// Errors from [`ProgramBuilder::build`].
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// No observation function was supplied.
    NoObservation,
    /// No initial valuation was supplied.
    NoInitialValuation,
    /// A variable was declared with an empty domain.
    EmptyDomain {
        /// The offending variable.
        variable: String,
    },
    /// An initial valuation has the wrong number of values.
    InitArity {
        /// The number of declared variables.
        expected: usize,
        /// The number of values supplied.
        got: usize,
    },
    /// An initial valuation assigns a value outside a variable's domain.
    InitOutOfDomain {
        /// The offending variable.
        variable: String,
    },
    /// A command produced a valuation outside the declared domains.
    UpdateOutOfDomain {
        /// The offending command.
        command: String,
    },
    /// The resulting system failed validation.
    System(SystemError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoObservation => write!(f, "no observation function supplied"),
            BuildError::NoInitialValuation => write!(f, "no initial valuation supplied"),
            BuildError::EmptyDomain { variable } => {
                write!(f, "variable {variable:?} has an empty domain")
            }
            BuildError::InitArity { expected, got } => {
                write!(f, "initial valuation has {got} values, expected {expected}")
            }
            BuildError::InitOutOfDomain { variable } => {
                write!(f, "initial value for {variable:?} is outside its domain")
            }
            BuildError::UpdateOutOfDomain { command } => {
                write!(f, "command {command:?} produced an out-of-domain valuation")
            }
            BuildError::System(e) => write!(f, "resulting system invalid: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl ProgramBuilder {
    /// Starts a program observed through `alphabet`.
    pub fn new(alphabet: &Alphabet) -> Self {
        ProgramBuilder {
            alphabet: alphabet.clone(),
            var_names: Vec::new(),
            domains: Vec::new(),
            inits: Vec::new(),
            observe: None,
            commands: Vec::new(),
        }
    }

    /// Declares a variable with domain `{0, …, domain−1}`; returns its
    /// index into valuation slices. An empty domain is reported by
    /// [`Self::build`] as [`BuildError::EmptyDomain`].
    pub fn var(&mut self, name: impl Into<String>, domain: usize) -> usize {
        self.var_names.push(name.into());
        self.domains.push(domain);
        self.domains.len() - 1
    }

    /// Declares an initial valuation (one value per declared variable, in
    /// declaration order). Arity or domain mismatches are reported by
    /// [`Self::build`] as [`BuildError::InitArity`] /
    /// [`BuildError::InitOutOfDomain`].
    pub fn init(&mut self, valuation: &[usize]) {
        self.inits.push(valuation.to_vec());
    }

    /// Sets the observation: a function from valuations to alphabet
    /// symbols.
    pub fn observe<F>(&mut self, f: F)
    where
        F: Fn(&[usize], &Alphabet) -> Symbol + 'static,
    {
        self.observe = Some(Box::new(f));
    }

    /// Adds a guarded command: when `guard` holds of the current valuation,
    /// the command may step to any of the valuations returned by `update`.
    pub fn command<G, U>(
        &mut self,
        name: impl Into<String>,
        fairness: Fairness,
        guard: G,
        update: U,
    ) where
        G: Fn(&[usize]) -> bool + 'static,
        U: Fn(&[usize]) -> Vec<Vec<usize>> + 'static,
    {
        self.commands.push(Command {
            name: name.into(),
            fairness,
            guard: Box::new(guard),
            update: Box::new(update),
        });
    }

    /// Enumerates the reachable valuations and produces the explicit
    /// transition system (validated).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for missing pieces, out-of-domain updates,
    /// or a system that fails [`TransitionSystem::validate`] (e.g.
    /// deadlocks).
    pub fn build(&self) -> Result<TransitionSystem, BuildError> {
        self.build_with_valuations().map(|(ts, _)| ts)
    }

    /// Like [`Self::build`], additionally returning the reachable
    /// valuations in state order (`valuations[s]` is the valuation
    /// interned as state `s`).
    ///
    /// # Errors
    ///
    /// Same as [`Self::build`].
    pub fn build_with_valuations(&self) -> Result<(TransitionSystem, Vec<Vec<usize>>), BuildError> {
        let observe = self.observe.as_ref().ok_or(BuildError::NoObservation)?;
        if let Some(i) = self.domains.iter().position(|&d| d == 0) {
            return Err(BuildError::EmptyDomain {
                variable: self.var_names[i].clone(),
            });
        }
        if self.inits.is_empty() {
            return Err(BuildError::NoInitialValuation);
        }
        for init in &self.inits {
            if init.len() != self.domains.len() {
                return Err(BuildError::InitArity {
                    expected: self.domains.len(),
                    got: init.len(),
                });
            }
            if let Some(i) = init.iter().zip(&self.domains).position(|(v, d)| v >= d) {
                return Err(BuildError::InitOutOfDomain {
                    variable: self.var_names[i].clone(),
                });
            }
        }
        let mut ts = TransitionSystem::new(&self.alphabet);
        let mut ids: std::collections::HashMap<Vec<usize>, usize> =
            std::collections::HashMap::new();
        let mut order: Vec<Vec<usize>> = Vec::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut intern = |vals: Vec<usize>,
                          ts: &mut TransitionSystem,
                          order: &mut Vec<Vec<usize>>,
                          queue: &mut std::collections::VecDeque<usize>| {
            if let Some(&id) = ids.get(&vals) {
                return id;
            }
            let id = ts.add_state(observe(&vals, &self.alphabet));
            ids.insert(vals.clone(), id);
            order.push(vals);
            queue.push_back(id);
            id
        };
        for init in &self.inits {
            let id = intern(init.clone(), &mut ts, &mut order, &mut queue);
            ts.set_initial(id);
        }
        // Per-command edge lists, discovered by forward exploration.
        let mut edges: Vec<Vec<(usize, usize)>> =
            self.commands.iter().map(|_| Vec::new()).collect();
        while let Some(id) = queue.pop_front() {
            let vals = order[id].clone();
            for (ci, cmd) in self.commands.iter().enumerate() {
                if !(cmd.guard)(&vals) {
                    continue;
                }
                for next in (cmd.update)(&vals) {
                    if next.len() != self.domains.len()
                        || next.iter().zip(&self.domains).any(|(v, d)| v >= d)
                    {
                        return Err(BuildError::UpdateOutOfDomain {
                            command: cmd.name.clone(),
                        });
                    }
                    let to = intern(next, &mut ts, &mut order, &mut queue);
                    edges[ci].push((id, to));
                }
            }
        }
        for (cmd, edge_list) in self.commands.iter().zip(edges) {
            ts.add_transition(cmd.name.clone(), edge_list, cmd.fairness);
        }
        ts.validate().map_err(BuildError::System)?;
        Ok((ts, order))
    }

    /// The declared variable names, in index order.
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// The declared variable domains, in index order.
    pub fn domains(&self) -> &[usize] {
        &self.domains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::verify;
    use hierarchy_logic::to_automaton::compile_over;
    use hierarchy_logic::Formula;

    fn spec(sigma: &Alphabet, src: &str) -> hierarchy_automata::omega::OmegaAutomaton {
        compile_over(sigma, &Formula::parse(sigma, src).unwrap()).unwrap()
    }

    /// MUX-SEM rebuilt through the builder: pc1, pc2 ∈ {N, T, C}.
    fn mux_sem_via_builder(grant_fairness: Fairness) -> (TransitionSystem, Alphabet) {
        let sigma = crate::programs::observation_alphabet();
        let mut p = ProgramBuilder::new(&sigma);
        let pc1 = p.var("pc1", 3);
        let pc2 = p.var("pc2", 3);
        p.init(&[0, 0]);
        p.observe(move |vals, alphabet| {
            alphabet.valuation_symbol(&[
                vals[pc1] == 2,
                vals[pc2] == 2,
                vals[pc1] == 1,
                vals[pc2] == 1,
            ])
        });
        let set = move |vals: &[usize], var: usize, value: usize| {
            let mut next = vals.to_vec();
            next[var] = value;
            vec![next]
        };
        p.command(
            "req1",
            Fairness::None,
            move |v| v[pc1] == 0,
            move |v| set(v, pc1, 1),
        );
        p.command(
            "req2",
            Fairness::None,
            move |v| v[pc2] == 0,
            move |v| set(v, pc2, 1),
        );
        p.command(
            "grant1",
            grant_fairness,
            move |v| v[pc1] == 1 && v[pc2] != 2,
            move |v| set(v, pc1, 2),
        );
        p.command(
            "grant2",
            grant_fairness,
            move |v| v[pc2] == 1 && v[pc1] != 2,
            move |v| set(v, pc2, 2),
        );
        p.command(
            "release1",
            Fairness::Weak,
            move |v| v[pc1] == 2,
            move |v| set(v, pc1, 0),
        );
        p.command(
            "release2",
            Fairness::Weak,
            move |v| v[pc2] == 2,
            move |v| set(v, pc2, 0),
        );
        p.command("idle", Fairness::None, |_| true, |v| vec![v.to_vec()]);
        (p.build().unwrap(), sigma)
    }

    #[test]
    fn builder_reproduces_mux_sem_verdicts() {
        for fairness in [Fairness::Strong, Fairness::Weak] {
            let (built, sigma) = mux_sem_via_builder(fairness);
            let (explicit, _) = crate::programs::mux_sem(fairness);
            for src in ["G !(c1 & c2)", "G (t1 -> F c1)", "G (t2 -> F c2)"] {
                let prop = spec(&sigma, src);
                assert_eq!(
                    verify(&built, &prop).expect("check").holds(),
                    verify(&explicit, &prop).expect("check").holds(),
                    "builder/explicit disagree on {src} under {fairness:?}"
                );
            }
        }
    }

    #[test]
    fn builder_only_explores_reachable_states() {
        let (built, _) = mux_sem_via_builder(Fairness::Strong);
        // pc1 = pc2 = C is unreachable (the semaphore), so 8 of 9
        // valuations remain.
        assert_eq!(built.num_states(), 8);
    }

    #[test]
    fn builder_errors() {
        let sigma = crate::programs::observation_alphabet();
        // Missing observation.
        let mut p = ProgramBuilder::new(&sigma);
        p.var("x", 2);
        p.init(&[0]);
        assert!(matches!(p.build(), Err(BuildError::NoObservation)));
        // Missing init.
        let mut p = ProgramBuilder::new(&sigma);
        p.var("x", 2);
        p.observe(|_, a| a.valuation_symbol(&[false, false, false, false]));
        assert!(matches!(p.build(), Err(BuildError::NoInitialValuation)));
        // Out-of-domain update.
        let mut p = ProgramBuilder::new(&sigma);
        let x = p.var("x", 2);
        p.init(&[0]);
        p.observe(|_, a| a.valuation_symbol(&[false, false, false, false]));
        p.command(
            "bad",
            Fairness::None,
            |_| true,
            move |v| {
                let mut n = v.to_vec();
                n[x] = 5;
                vec![n]
            },
        );
        assert!(matches!(
            p.build(),
            Err(BuildError::UpdateOutOfDomain { .. })
        ));
        // Deadlock detected by validation.
        let mut p = ProgramBuilder::new(&sigma);
        p.var("x", 2);
        p.init(&[0]);
        p.observe(|_, a| a.valuation_symbol(&[false, false, false, false]));
        assert!(matches!(
            p.build(),
            Err(BuildError::System(SystemError::Deadlock { .. }))
        ));
        // Declaration mistakes are deferred to build() instead of
        // panicking at declaration time.
        let mut p = ProgramBuilder::new(&sigma);
        p.var("x", 0);
        p.init(&[0]);
        p.observe(|_, a| a.valuation_symbol(&[false, false, false, false]));
        assert!(matches!(p.build(), Err(BuildError::EmptyDomain { .. })));
        let mut p = ProgramBuilder::new(&sigma);
        p.var("x", 2);
        p.init(&[0, 1]);
        p.observe(|_, a| a.valuation_symbol(&[false, false, false, false]));
        assert!(matches!(
            p.build(),
            Err(BuildError::InitArity {
                expected: 1,
                got: 2
            })
        ));
        let mut p = ProgramBuilder::new(&sigma);
        p.var("x", 2);
        p.init(&[2]);
        p.observe(|_, a| a.valuation_symbol(&[false, false, false, false]));
        assert!(matches!(p.build(), Err(BuildError::InitOutOfDomain { .. })));
    }

    #[test]
    fn build_with_valuations_orders_by_state() {
        let (built, sigma) = mux_sem_via_builder(Fairness::Strong);
        let mut p = ProgramBuilder::new(&sigma);
        let pc1 = p.var("pc1", 3);
        p.init(&[0]);
        p.observe(move |vals, alphabet| {
            alphabet.valuation_symbol(&[vals[pc1] == 2, false, vals[pc1] == 1, false])
        });
        p.command(
            "step",
            Fairness::Weak,
            |_| true,
            move |v| {
                let mut next = v.to_vec();
                next[pc1] = (v[pc1] + 1) % 3;
                vec![next]
            },
        );
        let (ts, vals) = p.build_with_valuations().expect("builds");
        assert_eq!(vals.len(), ts.num_states());
        for (s, val) in vals.iter().enumerate() {
            assert_eq!(
                ts.observation(s),
                sigma.valuation_symbol(&[val[0] == 2, false, val[0] == 1, false])
            );
        }
        assert_eq!(p.domains(), &[3]);
        assert_eq!(built.num_states(), 8);
    }

    #[test]
    fn nondeterministic_updates() {
        // A coin: flip goes to 0 or 1 nondeterministically; under weak
        // fairness of `flip` both values recur? No — fairness is about the
        // command, not its branches: □◇x is NOT guaranteed. Check that the
        // checker agrees (a run may always resolve the flip to 0).
        let sigma = Alphabet::of_propositions(["x"]).unwrap();
        let mut p = ProgramBuilder::new(&sigma);
        let x = p.var("x", 2);
        p.init(&[0]);
        p.observe(move |vals, alphabet| alphabet.valuation_symbol(&[vals[x] == 1]));
        p.command(
            "flip",
            Fairness::Weak,
            |_| true,
            |v| {
                let mut zero = v.to_vec();
                zero[0] = 0;
                let mut one = v.to_vec();
                one[0] = 1;
                vec![zero, one]
            },
        );
        let ts = p.build().unwrap();
        let prop = spec(&sigma, "G F x");
        assert!(!verify(&ts, &prop).expect("check").holds());
    }
}
