//! The model checker: does every fair computation of a transition system
//! satisfy a property given as a deterministic ω-automaton?
//!
//! The check searches the product of the system with the property
//! automaton for a *fair counterexample cycle*: a reachable cycle that is
//! accepted by the **complement** acceptance condition and satisfies every
//! fairness requirement. The search is an iterated SCC refinement — the
//! same algorithm family as Streett emptiness, since weak and strong
//! fairness are exactly Streett-shaped conditions over states and edges:
//!
//! * weak fairness of τ: the cycle contains a τ-edge or a state where τ is
//!   disabled (otherwise τ would be continuously enabled but never taken);
//! * strong fairness of τ: the cycle contains a τ-edge or no state where τ
//!   is enabled.
//!
//! A surviving SCC always admits a single witness cycle — the tour of the
//! whole SCC through the required edges — from which a lasso-shaped
//! counterexample is extracted.

use crate::error::CheckError;
use crate::system::{Fairness, TransitionSystem};
use hierarchy_automata::bitset::BitSet;
use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_automata::scc::{AdjGraph, SccCache};
use hierarchy_automata::StateId;
use std::collections::{HashMap, VecDeque};

/// The result of a verification run.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Every fair computation satisfies the property.
    Holds,
    /// A fair computation violating the property exists; the
    /// counterexample is a lasso of system states.
    Violated(Counterexample),
}

impl Verdict {
    /// Whether the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }
}

/// A lasso-shaped fair computation violating the property.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// System states leading to the loop.
    pub stem: Vec<usize>,
    /// The looping system states (repeated forever); non-empty.
    pub cycle: Vec<usize>,
}

/// Checks that every fair computation of `ts` (observed through its
/// alphabet) satisfies the language of `property`.
///
/// # Errors
///
/// Returns [`CheckError::InvalidSystem`] when the system fails
/// [`TransitionSystem::validate`] and [`CheckError::AlphabetMismatch`]
/// when the system and property observe different alphabets.
pub fn verify(ts: &TransitionSystem, property: &OmegaAutomaton) -> Result<Verdict, CheckError> {
    ts.validate().map_err(CheckError::InvalidSystem)?;
    if ts.alphabet() != property.alphabet() {
        return Err(CheckError::AlphabetMismatch);
    }
    let bad = property.complement();

    // Build the reachable product: node = (system state, automaton state
    // *before* reading the system state's observation).
    let mut ids: HashMap<(usize, StateId), usize> = HashMap::new();
    let mut nodes: Vec<(usize, StateId)> = Vec::new();
    // Edges annotated with the transition index that produced them.
    let mut succs: Vec<Vec<(usize, usize)>> = Vec::new(); // (target node, transition)
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s0 in ts.initial_states() {
        let key = (s0, bad.initial());
        if let std::collections::hash_map::Entry::Vacant(e) = ids.entry(key) {
            e.insert(nodes.len());
            nodes.push(key);
            succs.push(Vec::new());
            queue.push_back(nodes.len() - 1);
        }
    }
    while let Some(n) = queue.pop_front() {
        let (s, q) = nodes[n];
        let q_after = bad.step(q, ts.observation(s));
        for (t_idx, t) in ts.transitions().iter().enumerate() {
            for &(from, to) in &t.edges {
                if from != s {
                    continue;
                }
                let key = (to, q_after);
                let m = *ids.entry(key).or_insert_with(|| {
                    nodes.push(key);
                    succs.push(Vec::new());
                    queue.push_back(nodes.len() - 1);
                    nodes.len() - 1
                });
                succs[n].push((m, t_idx));
            }
        }
    }

    // Acceptance of the complement as DNF over *automaton* state sets,
    // lifted to product nodes. Note the automaton state relevant to node
    // (s, q) is the state after reading obs(s) — the infinity set of the
    // automaton run is the set of q_after values along the cycle.
    let lift = |set: &BitSet| -> BitSet {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, &(s, q))| set.contains(bad.step(q, ts.observation(s)) as usize))
            .map(|(i, _)| i)
            .collect()
    };
    // One memoized SCC substrate over the product graph, shared across the
    // DNF disjuncts and the fairness-refinement rounds: the same
    // restriction recurs whenever disjuncts share a `fin` set, and every
    // pass/hit is counted for the stats-minded caller.
    let mut sccs = SccCache::new(AdjGraph::from_fn(nodes.len(), |v| {
        succs[v as usize]
            .iter()
            .map(|&(m, _)| m as StateId)
            .collect::<Vec<_>>()
    }));
    for disjunct in bad.acceptance().dnf() {
        let avoid = lift(&disjunct.fin);
        let infs: Vec<BitSet> = disjunct.infs.iter().map(&lift).collect();
        let allowed: BitSet = (0..nodes.len()).filter(|n| !avoid.contains(*n)).collect();
        if let Some(cex) = fair_cycle_search(ts, &nodes, &succs, &mut sccs, &allowed, &infs) {
            return Ok(Verdict::Violated(cex));
        }
    }
    Ok(Verdict::Holds)
}

/// Searches for a reachable fair cycle within `allowed` hitting every set
/// in `infs`. Returns a counterexample if found.
fn fair_cycle_search(
    ts: &TransitionSystem,
    nodes: &[(usize, StateId)],
    succs: &[Vec<(usize, usize)>],
    scc_cache: &mut SccCache<AdjGraph>,
    allowed: &BitSet,
    infs: &[BitSet],
) -> Option<Counterexample> {
    let mut stack: Vec<BitSet> = {
        let sccs = scc_cache.sccs(Some(allowed));
        (0..sccs.len())
            .filter(|&c| sccs.has_cycle[c])
            .map(|c| sccs.member_set(c))
            .collect()
    };
    'regions: while let Some(region) = stack.pop() {
        // Inf sets must all intersect the region; subsets only shrink, so
        // a miss discards the region.
        if infs.iter().any(|s| !region.intersects(s)) {
            continue;
        }
        // Per-transition analysis within the region.
        let mut required_edges: Vec<(usize, usize)> = Vec::new(); // product edge
        let mut refined = region.clone();
        let mut must_refine = false;
        for (t_idx, t) in ts.transitions().iter().enumerate() {
            if t.fairness == Fairness::None {
                continue;
            }
            let has_edge = region.iter().find_map(|n| {
                succs[n]
                    .iter()
                    .find(|&&(m, tt)| tt == t_idx && region.contains(m))
                    .map(|&(m, _)| (n, m))
            });
            let enabled_nodes: Vec<usize> = region
                .iter()
                .filter(|&n| ts.enabled(t_idx, nodes[n].0))
                .collect();
            match t.fairness {
                Fairness::Weak => {
                    let disabled_exists = enabled_nodes.len() < region.len();
                    match has_edge {
                        Some(e) => required_edges.push(e),
                        None if disabled_exists => {} // a disabled node is toured anyway
                        None => continue 'regions,    // every cycle here is unfair
                    }
                }
                Fairness::Strong => {
                    if let Some(e) = has_edge {
                        required_edges.push(e);
                    } else if !enabled_nodes.is_empty() {
                        // Refine away the enabled nodes and retry.
                        for n in enabled_nodes {
                            refined.remove(n);
                        }
                        must_refine = true;
                    }
                }
                Fairness::None => unreachable!(),
            }
        }
        if must_refine {
            let inner = scc_cache.sccs(Some(&refined));
            for c in 0..inner.len() {
                if inner.has_cycle[c] {
                    stack.push(inner.member_set(c));
                }
            }
            continue;
        }
        // The region survives: the full tour through the required edges is
        // a fair accepted cycle.
        return Some(build_counterexample(nodes, succs, &region, &required_edges));
    }
    None
}

/// Builds a lasso: BFS stem from an initial node (node 0 side: any node
/// without predecessors isn't necessarily initial, so the stem BFS starts
/// from the recorded initial nodes — they are exactly the nodes created
/// first, i.e. those whose automaton part is the property initial state;
/// we simply BFS from node indices stored first) and a cycle touring every
/// node of the region plus the required edges.
fn build_counterexample(
    nodes: &[(usize, StateId)],
    succs: &[Vec<(usize, usize)>],
    region: &BitSet,
    required_edges: &[(usize, usize)],
) -> Counterexample {
    // Stem: BFS from node 0..k where k = number of initial nodes — the
    // construction in `verify` inserts all initial nodes before anything
    // else, and they are precisely the nodes with the property's initial
    // automaton state; BFS over everything reaching the region.
    let start_targets = region;
    let mut prev: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut seen = vec![false; nodes.len()];
    let mut queue = VecDeque::new();
    // All initial product nodes were created before any successor; node 0
    // is always initial. Seed every node that has the same automaton state
    // as node 0 and appears in the initial list — conservatively, seed
    // node 0 and any node never produced as a successor.
    let mut is_succ = vec![false; nodes.len()];
    for row in succs {
        for &(m, _) in row {
            is_succ[m] = true;
        }
    }
    for n in 0..nodes.len() {
        if !is_succ[n] || n == 0 {
            seen[n] = true;
            queue.push_back(n);
        }
    }
    let mut entry = None;
    'bfs: while let Some(n) = queue.pop_front() {
        if start_targets.contains(n) {
            entry = Some(n);
            break 'bfs;
        }
        for &(m, _) in &succs[n] {
            if !seen[m] {
                seen[m] = true;
                prev[m] = Some(n);
                queue.push_back(m);
            }
        }
    }
    let entry = entry.expect("region is reachable");
    let mut stem_nodes = vec![entry];
    let mut cur = entry;
    while let Some(p) = prev[cur] {
        stem_nodes.push(p);
        cur = p;
    }
    stem_nodes.reverse();

    // Cycle: tour all region nodes and required edges, starting and ending
    // at `entry`.
    let path_within = |from: usize, to: usize| -> Vec<usize> {
        // BFS within region; returns intermediate+target nodes (empty if
        // from == to).
        if from == to {
            return Vec::new();
        }
        let mut prev: Vec<Option<usize>> = vec![None; nodes.len()];
        let mut seen = vec![false; nodes.len()];
        let mut queue = VecDeque::new();
        seen[from] = true;
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            for &(m, _) in &succs[n] {
                if region.contains(m) && !seen[m] {
                    seen[m] = true;
                    prev[m] = Some(n);
                    if m == to {
                        let mut path = vec![to];
                        let mut c = to;
                        while let Some(p) = prev[c] {
                            if p == from {
                                break;
                            }
                            path.push(p);
                            c = p;
                        }
                        path.reverse();
                        return path;
                    }
                    queue.push_back(m);
                }
            }
        }
        unreachable!("region is strongly connected");
    };
    let mut cycle_nodes: Vec<usize> = Vec::new();
    let mut at = entry;
    // Visit every node of the region.
    for target in region.iter() {
        let leg = path_within(at, target);
        at = *leg.last().unwrap_or(&at);
        cycle_nodes.extend(leg);
    }
    // Traverse every required edge.
    for &(u, v) in required_edges {
        let leg = path_within(at, u);
        cycle_nodes.extend(leg);
        cycle_nodes.push(v);
        at = v;
    }
    // Close the loop.
    let leg = path_within(at, entry);
    cycle_nodes.extend(leg);
    if cycle_nodes.is_empty() {
        // Single-node region with a self-loop.
        cycle_nodes.push(entry);
    }
    Counterexample {
        stem: stem_nodes.iter().map(|&n| nodes[n].0).collect(),
        cycle: cycle_nodes.iter().map(|&n| nodes[n].0).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;
    use hierarchy_logic::to_automaton::compile_over;
    use hierarchy_logic::Formula;

    /// A process looping n → t → c → n, with a lazy "stay at t" option.
    fn simple_loop(weak_entry: bool) -> (TransitionSystem, Alphabet) {
        let sigma = Alphabet::new(["n", "t", "c"]).unwrap();
        let mut ts = TransitionSystem::new(&sigma);
        let n = ts.add_state(sigma.symbol("n").unwrap());
        let t = ts.add_state(sigma.symbol("t").unwrap());
        let c = ts.add_state(sigma.symbol("c").unwrap());
        ts.set_initial(n);
        ts.add_transition("request", vec![(n, t)], Fairness::None);
        ts.add_transition("idle", vec![(n, n), (t, t)], Fairness::None);
        ts.add_transition(
            "enter",
            vec![(t, c)],
            if weak_entry {
                Fairness::Weak
            } else {
                Fairness::None
            },
        );
        ts.add_transition("leave", vec![(c, n)], Fairness::Weak);
        (ts, sigma)
    }

    fn spec(sigma: &Alphabet, src: &str) -> OmegaAutomaton {
        compile_over(sigma, &Formula::parse(sigma, src).unwrap()).unwrap()
    }

    #[test]
    fn safety_holds() {
        let (ts, sigma) = simple_loop(true);
        // □¬(n ∧ c) is trivially a tautology per-state; check a real one:
        // □(c → ⊖t): entering c only from t.
        let v = verify(&ts, &spec(&sigma, "G (c -> Y t)")).expect("check");
        assert!(v.holds());
    }

    #[test]
    fn response_needs_fairness() {
        // With weak fairness on `enter`, every request is served.
        let (ts, sigma) = simple_loop(true);
        assert!(verify(&ts, &spec(&sigma, "G (t -> F c)"))
            .expect("check")
            .holds());
        // Without fairness the process may idle at t forever.
        let (ts, sigma) = simple_loop(false);
        let v = verify(&ts, &spec(&sigma, "G (t -> F c)")).expect("check");
        match v {
            Verdict::Violated(cex) => {
                assert!(!cex.cycle.is_empty());
                // The counterexample loops in the trying state (1).
                assert!(cex.cycle.contains(&1));
            }
            Verdict::Holds => panic!("expected a violation"),
        }
    }

    #[test]
    fn violated_safety_gives_counterexample() {
        let (ts, sigma) = simple_loop(true);
        // □¬c is false: the system does reach c under fairness… but also
        // without: any computation reaching c violates.
        let v = verify(&ts, &spec(&sigma, "G !c")).expect("check");
        match v {
            Verdict::Violated(cex) => {
                let all: Vec<usize> = cex.stem.iter().chain(cex.cycle.iter()).copied().collect();
                assert!(all.contains(&2), "counterexample must reach c");
            }
            Verdict::Holds => panic!("□¬c should be violated"),
        }
    }

    #[test]
    fn strong_fairness_distinguishes() {
        // Two requesters sharing a semaphore; only strong fairness on the
        // grant transitions guarantees accessibility for both.
        let sigma = Alphabet::of_propositions(["c1", "c2"]).unwrap();
        let none = sigma.valuation_symbol(&[false, false]);
        let in1 = sigma.valuation_symbol(&[true, false]);
        let in2 = sigma.valuation_symbol(&[false, true]);
        let build = |fair: Fairness| {
            let mut ts = TransitionSystem::new(&sigma);
            let idle = ts.add_state(none);
            let c1 = ts.add_state(in1);
            let c2 = ts.add_state(in2);
            ts.set_initial(idle);
            ts.add_transition("grant1", vec![(idle, c1)], fair);
            ts.add_transition("grant2", vec![(idle, c2)], fair);
            ts.add_transition("release1", vec![(c1, idle)], Fairness::Weak);
            ts.add_transition("release2", vec![(c2, idle)], Fairness::Weak);
            ts
        };
        // Strong fairness: both critical sections recur.
        let ts = build(Fairness::Strong);
        assert!(verify(&ts, &spec(&sigma, "G F c1")).expect("check").holds());
        assert!(verify(&ts, &spec(&sigma, "G F c2")).expect("check").holds());
        // Weak fairness does NOT suffice: alternating idle→c1→idle→c1…
        // disables grant2 at c1, so grant2 is not continuously enabled.
        let ts = build(Fairness::Weak);
        let v = verify(&ts, &spec(&sigma, "G F c2")).expect("check");
        assert!(!v.holds(), "weak fairness admits starvation of process 2");
    }

    #[test]
    fn counterexample_is_a_real_computation() {
        let (ts, sigma) = simple_loop(false);
        let prop = spec(&sigma, "G (t -> F c)");
        if let Verdict::Violated(cex) = verify(&ts, &prop).expect("check") {
            // Each consecutive pair is an edge of the system; the cycle
            // closes.
            let check_step = |a: usize, b: usize| ts.successors(a).contains(&b);
            let mut seq = cex.stem.clone();
            seq.extend(cex.cycle.iter().copied());
            for w in seq.windows(2) {
                assert!(check_step(w[0], w[1]), "bad step {} -> {}", w[0], w[1]);
            }
            let last = *cex.cycle.last().unwrap();
            let first_of_cycle = cex.cycle[0];
            assert!(check_step(last, first_of_cycle), "cycle must close");
        } else {
            panic!("expected violation");
        }
    }
}
