//! The model checker: does every fair computation of a transition system
//! satisfy a property given as a deterministic ω-automaton?
//!
//! The check searches the product of the system with the property
//! automaton for a *fair counterexample cycle*: a reachable cycle that is
//! accepted by the **complement** acceptance condition and satisfies every
//! fairness requirement. The search is an iterated SCC refinement — the
//! same algorithm family as Streett emptiness, since weak and strong
//! fairness are exactly Streett-shaped conditions over states and edges:
//!
//! * weak fairness of τ: the cycle contains a τ-edge or a state where τ is
//!   disabled (otherwise τ would be continuously enabled but never taken);
//! * strong fairness of τ: the cycle contains a τ-edge or no state where τ
//!   is enabled.
//!
//! A surviving SCC always admits a single witness cycle — the tour of the
//! whole SCC through the required edges — from which a lasso-shaped
//! counterexample is extracted.
//!
//! ## Invariant-first checking
//!
//! [`check_with_invariants`] puts the hierarchy to work before any
//! product is built: it runs the abstract-interpretation engine
//! ([`crate::absint`]) over a declarative program, re-verifies the
//! resulting certificate, and — when `classify` places the property in
//! the safety class — discharges the check entirely in the abstract:
//! if no abstract (location, automaton-state) pair can emit a symbol
//! entering a dead automaton state, no bad prefix exists and the
//! property holds with **zero** concrete product states. Otherwise it
//! falls back to the explicit search, carrying the abstract pair set as
//! a pruning filter. Because the abstract set over-approximates the
//! concrete reachable set, the filter never actually removes a concrete
//! node — a nonzero [`CheckStats::pruned_product_states`] would witness
//! an unsoundness in the engine, which is exactly why the count is a
//! plain stats field surfaced all the way into the benchmark JSON:
//! release runs observe the tripwire too, instead of a `debug_assert!`
//! that vanishes under `--release`.

use crate::absint::{self, DomainKind, Invariant, Program, ValueSetDomain};
use crate::error::CheckError;
use crate::system::{Fairness, TransitionSystem};
use hierarchy_automata::alphabet::{Alphabet, Symbol};
use hierarchy_automata::bitset::BitSet;
use hierarchy_automata::classify;
use hierarchy_automata::flat::FlatGraph;
use hierarchy_automata::lasso::Lasso;
use hierarchy_automata::minimize::minimize;
use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_automata::scc::SccCache;
use hierarchy_automata::StateId;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// The result of a verification run.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Every fair computation satisfies the property.
    Holds,
    /// A fair computation violating the property exists; the
    /// counterexample is a lasso of system states.
    Violated(Counterexample),
}

impl Verdict {
    /// Whether the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }
}

/// A lasso-shaped fair computation violating the property.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// System states leading to the loop.
    pub stem: Vec<usize>,
    /// The looping system states (repeated forever); non-empty.
    pub cycle: Vec<usize>,
}

/// Counters describing one checking run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Concrete product nodes constructed (`0` when the property was
    /// discharged statically).
    pub product_states: usize,
    /// Successor nodes skipped by the abstract pruning filter. The
    /// filter is sound (the abstract set contains every concrete
    /// reachable pair), so this is `0` whenever the certificate holds —
    /// a nonzero count witnesses an engine bug, not a saving.
    pub pruned_product_states: usize,
    /// Abstract `(location, automaton-state)` pairs explored by
    /// [`check_with_invariants`] (`0` for plain explicit checking).
    pub abstract_pairs: usize,
    /// Whether the verdict was discharged by the invariant alone,
    /// without building any concrete product state.
    pub discharged: bool,
    /// Outcome of the independent certificate re-check (`None` when no
    /// invariant was computed).
    pub certificate_ok: Option<bool>,
}

/// A pruning filter for the product construction: the abstract
/// reachable `(location, complement-automaton state)` pairs, plus the
/// location of every concrete system state.
struct Prune<'a> {
    loc_of: &'a [usize],
    allowed: &'a HashSet<(usize, StateId)>,
}

/// Checks that every fair computation of `ts` (observed through its
/// alphabet) satisfies the language of `property`.
///
/// # Errors
///
/// Returns [`CheckError::InvalidSystem`] when the system fails
/// [`TransitionSystem::validate`] and [`CheckError::AlphabetMismatch`]
/// when the system and property observe different alphabets.
pub fn verify(ts: &TransitionSystem, property: &OmegaAutomaton) -> Result<Verdict, CheckError> {
    verify_product(ts, property, None).map(|(v, _)| v)
}

/// Like [`verify`], additionally returning [`CheckStats`] (product size;
/// the abstract fields stay at their defaults).
///
/// # Errors
///
/// Same as [`verify`].
pub fn verify_with_stats(
    ts: &TransitionSystem,
    property: &OmegaAutomaton,
) -> Result<(Verdict, CheckStats), CheckError> {
    verify_product(ts, property, None)
}

fn verify_product(
    ts: &TransitionSystem,
    property: &OmegaAutomaton,
    prune: Option<&Prune<'_>>,
) -> Result<(Verdict, CheckStats), CheckError> {
    ts.validate().map_err(CheckError::InvalidSystem)?;
    if ts.alphabet() != property.alphabet() {
        return Err(CheckError::AlphabetMismatch);
    }
    // Quotient the complement before building the product: the product
    // size is |system| × |bad|, so every state partition refinement
    // merges here is saved once per system state. Counterexamples are
    // unaffected — their stem and cycle consist of system states only,
    // and the replay validation below checks them against the *raw*
    // property.
    let bad = minimize(&property.complement()).quotient;
    let mut stats = CheckStats::default();

    // Build the reachable product: node = (system state, automaton state
    // *before* reading the system state's observation).
    let mut ids: HashMap<(usize, StateId), usize> = HashMap::new();
    let mut nodes: Vec<(usize, StateId)> = Vec::new();
    // Edges annotated with the transition index that produced them.
    let mut succs: Vec<Vec<(usize, usize)>> = Vec::new(); // (target node, transition)
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s0 in ts.initial_states() {
        let key = (s0, bad.initial());
        if let std::collections::hash_map::Entry::Vacant(e) = ids.entry(key) {
            e.insert(nodes.len());
            nodes.push(key);
            succs.push(Vec::new());
            queue.push_back(nodes.len() - 1);
        }
    }
    while let Some(n) = queue.pop_front() {
        let (s, q) = nodes[n];
        let q_after = bad.step(q, ts.observation(s));
        for (t_idx, t) in ts.transitions().iter().enumerate() {
            for &(from, to) in &t.edges {
                if from != s {
                    continue;
                }
                let key = (to, q_after);
                let m = match ids.get(&key) {
                    Some(&m) => m,
                    None => {
                        if let Some(p) = prune {
                            if !p.allowed.contains(&(p.loc_of[to], q_after)) {
                                stats.pruned_product_states += 1;
                                continue;
                            }
                        }
                        let m = nodes.len();
                        ids.insert(key, m);
                        nodes.push(key);
                        succs.push(Vec::new());
                        queue.push_back(m);
                        m
                    }
                };
                succs[n].push((m, t_idx));
            }
        }
    }
    stats.product_states = nodes.len();
    // Soundness: the abstract pair set over-approximates the concrete
    // one, so the filter must never fire — callers and the benchmark
    // observe `pruned_product_states` as a release-mode tripwire.

    // Acceptance of the complement as DNF over *automaton* state sets,
    // lifted to product nodes. Note the automaton state relevant to node
    // (s, q) is the state after reading obs(s) — the infinity set of the
    // automaton run is the set of q_after values along the cycle.
    let lift = |set: &BitSet| -> BitSet {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, &(s, q))| set.contains(bad.step(q, ts.observation(s)) as usize))
            .map(|(i, _)| i)
            .collect()
    };
    // One memoized SCC substrate over the product graph, shared across the
    // DNF disjuncts and the fairness-refinement rounds: the same
    // restriction recurs whenever disjuncts share a `fin` set, and every
    // pass/hit is counted for the stats-minded caller.
    let mut sccs = SccCache::new(FlatGraph::from_fn(nodes.len(), |v| {
        succs[v as usize]
            .iter()
            .map(|&(m, _)| m as StateId)
            .collect::<Vec<_>>()
    }));
    for disjunct in bad.acceptance().dnf() {
        let avoid = lift(&disjunct.fin);
        let infs: Vec<BitSet> = disjunct.infs.iter().map(&lift).collect();
        let allowed: BitSet = (0..nodes.len()).filter(|n| !avoid.contains(*n)).collect();
        if let Some(cex) = fair_cycle_search(ts, &nodes, &succs, &mut sccs, &allowed, &infs) {
            debug_assert!(
                validate_violation(ts, property, &cex).is_ok(),
                "checker produced an invalid counterexample: {:?}",
                validate_violation(ts, property, &cex)
            );
            return Ok((Verdict::Violated(cex), stats));
        }
    }
    Ok((Verdict::Holds, stats))
}

/// Replays a counterexample against the system: the stem starts in an
/// initial state, every consecutive pair (through the cycle and around
/// its wrap) is an edge of some transition, and the cycle satisfies
/// every fairness requirement — a weakly fair transition is disabled
/// somewhere on the cycle or taken by it, a strongly fair transition is
/// enabled nowhere or taken. (A cycle pair shared by several transitions
/// can serve them all: successive unrollings of the lasso may attribute
/// it differently.)
///
/// # Errors
///
/// A human-readable description of the first defect found.
pub fn validate_counterexample(ts: &TransitionSystem, cex: &Counterexample) -> Result<(), String> {
    if cex.cycle.is_empty() {
        return Err("counterexample cycle is empty".to_string());
    }
    for &s in cex.stem.iter().chain(&cex.cycle) {
        if s >= ts.num_states() {
            return Err(format!("state {s} does not exist"));
        }
    }
    let first = *cex.stem.first().unwrap_or(&cex.cycle[0]);
    if !ts.initial_states().contains(&first) {
        return Err(format!("state {first} is not initial"));
    }
    let step_ok = |a: usize, b: usize| ts.successors(a).contains(&b);
    let seq: Vec<usize> = cex.stem.iter().chain(&cex.cycle).copied().collect();
    for w in seq.windows(2) {
        if !step_ok(w[0], w[1]) {
            return Err(format!("no transition edge {} -> {}", w[0], w[1]));
        }
    }
    let wrap = (*cex.cycle.last().unwrap(), cex.cycle[0]);
    if !step_ok(wrap.0, wrap.1) {
        return Err(format!("cycle does not close: {} -> {}", wrap.0, wrap.1));
    }
    let mut pairs: Vec<(usize, usize)> = cex.cycle.windows(2).map(|w| (w[0], w[1])).collect();
    pairs.push(wrap);
    for (t_idx, t) in ts.transitions().iter().enumerate() {
        if t.fairness == Fairness::None {
            continue;
        }
        if pairs.iter().any(|p| t.edges.contains(p)) {
            continue; // taken on the cycle
        }
        match t.fairness {
            Fairness::Weak => {
                if cex.cycle.iter().all(|&s| ts.enabled(t_idx, s)) {
                    return Err(format!(
                        "weakly fair transition {:?} is continuously enabled but never taken",
                        t.name
                    ));
                }
            }
            Fairness::Strong => {
                if cex.cycle.iter().any(|&s| ts.enabled(t_idx, s)) {
                    return Err(format!(
                        "strongly fair transition {:?} is recurrently enabled but never taken",
                        t.name
                    ));
                }
            }
            Fairness::None => unreachable!(),
        }
    }
    Ok(())
}

/// [`validate_counterexample`] plus the punchline: the observation lasso
/// induced by the replayed computation must be *rejected* by the
/// property (otherwise the "counterexample" satisfies it).
///
/// # Errors
///
/// As [`validate_counterexample`], or a message that the lasso satisfies
/// the property.
pub fn validate_violation(
    ts: &TransitionSystem,
    property: &OmegaAutomaton,
    cex: &Counterexample,
) -> Result<(), String> {
    validate_counterexample(ts, cex)?;
    let spoke: Vec<Symbol> = cex.stem.iter().map(|&s| ts.observation(s)).collect();
    let cycle: Vec<Symbol> = cex.cycle.iter().map(|&s| ts.observation(s)).collect();
    if property.accepts(&Lasso::new(spoke, cycle)) {
        return Err("the induced lasso satisfies the property".to_string());
    }
    Ok(())
}

/// The possible observation symbols at one abstract location, from the
/// three-valued truth of each proposition guard under the invariant.
/// Falls back to the whole alphabet when too many propositions are
/// undetermined for enumeration.
fn possible_symbols(prog: &Program, inv: &Invariant, sigma: &Alphabet, l: usize) -> Vec<Symbol> {
    let statuses: Vec<Option<bool>> = prog
        .observations
        .iter()
        .map(|g| inv.guard_status(l, g))
        .collect();
    let free: Vec<usize> = statuses
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(i, _)| i)
        .collect();
    if free.len() > 16 {
        return sigma.symbols().collect();
    }
    let mut bits: Vec<bool> = statuses.iter().map(|s| *s == Some(true)).collect();
    (0..1usize << free.len())
        .map(|combo| {
            for (j, &i) in free.iter().enumerate() {
                bits[i] = combo >> j & 1 == 1;
            }
            sigma.valuation_symbol(&bits)
        })
        .collect()
}

/// The abstract successor relation on locations: `l → l'` when some
/// command branch, feasible under the invariant at `l`, may move the
/// `pc` to `l'`.
fn abstract_loc_succs(prog: &Program, inv: &Invariant) -> Vec<Vec<usize>> {
    let nlocs = inv.locations.len();
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); nlocs];
    for (l, row) in out.iter_mut().enumerate() {
        if !inv.location_reachable(l) {
            continue;
        }
        let env = &inv.locations[l].values;
        let mut targets: BTreeSet<usize> = BTreeSet::new();
        for cmd in &prog.commands {
            let Some(env_g) = absint::assume::<ValueSetDomain>(&cmd.guard, env, &prog.domains)
            else {
                continue;
            };
            for br in &cmd.branches {
                let Some(env_b) =
                    absint::solve::post_branch::<ValueSetDomain>(&env_g, br, &prog.domains)
                else {
                    continue;
                };
                match prog.pc {
                    None => {
                        targets.insert(0);
                    }
                    Some(p) => {
                        for l2 in 0..prog.domains[p] {
                            if env_b[p] >> l2 & 1 == 1 {
                                targets.insert(l2);
                            }
                        }
                    }
                }
            }
        }
        *row = targets.into_iter().collect();
    }
    out
}

struct AbstractProduct {
    pairs: HashSet<(usize, StateId)>,
    hit_dead: bool,
}

/// BFS over the abstract product of the location graph with `aut`:
/// from each reachable pair `(l, q)`, every possible symbol at `l`
/// advances the automaton and every abstract location successor extends
/// the pair set. When `dead` is given, records whether any emission
/// steps into a dead automaton state (the abstract bad-prefix test).
fn abstract_product(
    prog: &Program,
    inv: &Invariant,
    sigma: &Alphabet,
    aut: &OmegaAutomaton,
    dead: Option<&BitSet>,
) -> AbstractProduct {
    let loc_succs = abstract_loc_succs(prog, inv);
    let symbols: Vec<Vec<Symbol>> = (0..inv.locations.len())
        .map(|l| {
            if inv.location_reachable(l) {
                possible_symbols(prog, inv, sigma, l)
            } else {
                Vec::new()
            }
        })
        .collect();
    let mut pairs: HashSet<(usize, StateId)> = HashSet::new();
    let mut queue: VecDeque<(usize, StateId)> = VecDeque::new();
    for init in &prog.inits {
        let pr = (prog.location_of(init), aut.initial());
        if pairs.insert(pr) {
            queue.push_back(pr);
        }
    }
    let mut hit_dead = false;
    while let Some((l, q)) = queue.pop_front() {
        for &a in &symbols[l] {
            let q2 = aut.step(q, a);
            if let Some(d) = dead {
                if d.contains(q2 as usize) {
                    hit_dead = true;
                }
            }
            for &l2 in &loc_succs[l] {
                let pr = (l2, q2);
                if pairs.insert(pr) {
                    queue.push_back(pr);
                }
            }
        }
    }
    AbstractProduct { pairs, hit_dead }
}

/// Invariant-first verification of a declarative program against a
/// property over the proposition alphabet `sigma`.
///
/// Runs [`absint::analyze`] with the chosen domain, re-verifies the
/// certificate with [`absint::certify`], and then:
///
/// 1. if the certificate holds and `classify` places the property in the
///    **safety** class, attempts the abstract discharge: when no
///    abstract pair can emit a symbol entering a dead automaton state,
///    the property holds with zero concrete product states
///    ([`CheckStats::discharged`]);
/// 2. otherwise builds the explicit system and runs the product search,
///    pruned by the abstract pair set when the certificate holds (a
///    sound no-op filter kept as a cross-check — see the module docs).
///
/// A failed certificate is never trusted: the fall back is the plain
/// explicit search, and the failure is reported through
/// [`CheckStats::certificate_ok`] (and by `spec-lint` as `FTS007`).
///
/// # Errors
///
/// [`CheckError::InvalidProgram`] for an ill-formed program,
/// [`CheckError::AlphabetMismatch`] when `sigma` does not match the
/// program's observations or the property's alphabet,
/// [`CheckError::BuildFailed`] when explicit enumeration fails, plus
/// the errors of [`verify`].
pub fn check_with_invariants(
    program: &Program,
    sigma: &Alphabet,
    property: &OmegaAutomaton,
    domain: DomainKind,
) -> Result<(Verdict, CheckStats), CheckError> {
    program
        .validate()
        .map_err(|e| CheckError::InvalidProgram(e.to_string()))?;
    if property.alphabet() != sigma || sigma.propositions().len() != program.observations.len() {
        return Err(CheckError::AlphabetMismatch);
    }
    let inv = absint::analyze(program, domain);
    let cert_ok = absint::certify(program, &inv).is_ok();
    let mut stats = CheckStats {
        certificate_ok: Some(cert_ok),
        ..CheckStats::default()
    };

    if cert_ok && classify::is_safety(property) {
        let dead = property.live_states().complement(property.num_states());
        let ap = abstract_product(program, &inv, sigma, property, Some(&dead));
        stats.abstract_pairs = ap.pairs.len();
        if !ap.hit_dead {
            stats.discharged = true;
            return Ok((Verdict::Holds, stats));
        }
    }

    let (ts, vals) = program
        .to_builder(sigma)
        .build_with_valuations()
        .map_err(|e| CheckError::BuildFailed(e.to_string()))?;
    if cert_ok {
        let bad = property.complement();
        let ap = abstract_product(program, &inv, sigma, &bad, None);
        stats.abstract_pairs = ap.pairs.len();
        let loc_of: Vec<usize> = vals.iter().map(|v| program.location_of(v)).collect();
        let prune = Prune {
            loc_of: &loc_of,
            allowed: &ap.pairs,
        };
        let (verdict, vstats) = verify_product(&ts, property, Some(&prune))?;
        stats.product_states = vstats.product_states;
        stats.pruned_product_states = vstats.pruned_product_states;
        Ok((verdict, stats))
    } else {
        let (verdict, vstats) = verify_product(&ts, property, None)?;
        stats.product_states = vstats.product_states;
        Ok((verdict, stats))
    }
}

/// Searches for a reachable fair cycle within `allowed` hitting every set
/// in `infs`. Returns a counterexample if found.
fn fair_cycle_search(
    ts: &TransitionSystem,
    nodes: &[(usize, StateId)],
    succs: &[Vec<(usize, usize)>],
    scc_cache: &mut SccCache<FlatGraph>,
    allowed: &BitSet,
    infs: &[BitSet],
) -> Option<Counterexample> {
    let mut stack: Vec<BitSet> = {
        let sccs = scc_cache.sccs(Some(allowed));
        (0..sccs.len())
            .filter(|&c| sccs.has_cycle[c])
            .map(|c| sccs.member_set(c))
            .collect()
    };
    'regions: while let Some(region) = stack.pop() {
        // Inf sets must all intersect the region; subsets only shrink, so
        // a miss discards the region.
        if infs.iter().any(|s| !region.intersects(s)) {
            continue;
        }
        // Per-transition analysis within the region.
        let mut required_edges: Vec<(usize, usize)> = Vec::new(); // product edge
        let mut refined = region.clone();
        let mut must_refine = false;
        for (t_idx, t) in ts.transitions().iter().enumerate() {
            if t.fairness == Fairness::None {
                continue;
            }
            let has_edge = region.iter().find_map(|n| {
                succs[n]
                    .iter()
                    .find(|&&(m, tt)| tt == t_idx && region.contains(m))
                    .map(|&(m, _)| (n, m))
            });
            let enabled_nodes: Vec<usize> = region
                .iter()
                .filter(|&n| ts.enabled(t_idx, nodes[n].0))
                .collect();
            match t.fairness {
                Fairness::Weak => {
                    let disabled_exists = enabled_nodes.len() < region.len();
                    match has_edge {
                        Some(e) => required_edges.push(e),
                        None if disabled_exists => {} // a disabled node is toured anyway
                        None => continue 'regions,    // every cycle here is unfair
                    }
                }
                Fairness::Strong => {
                    if let Some(e) = has_edge {
                        required_edges.push(e);
                    } else if !enabled_nodes.is_empty() {
                        // Refine away the enabled nodes and retry.
                        for n in enabled_nodes {
                            refined.remove(n);
                        }
                        must_refine = true;
                    }
                }
                Fairness::None => unreachable!(),
            }
        }
        if must_refine {
            let inner = scc_cache.sccs(Some(&refined));
            for c in 0..inner.len() {
                if inner.has_cycle[c] {
                    stack.push(inner.member_set(c));
                }
            }
            continue;
        }
        // The region survives: the full tour through the required edges is
        // a fair accepted cycle.
        return Some(build_counterexample(nodes, succs, &region, &required_edges));
    }
    None
}

/// Builds a lasso: BFS stem from an initial node (node 0 side: any node
/// without predecessors isn't necessarily initial, so the stem BFS starts
/// from the recorded initial nodes — they are exactly the nodes created
/// first, i.e. those whose automaton part is the property initial state;
/// we simply BFS from node indices stored first) and a cycle touring every
/// node of the region plus the required edges.
fn build_counterexample(
    nodes: &[(usize, StateId)],
    succs: &[Vec<(usize, usize)>],
    region: &BitSet,
    required_edges: &[(usize, usize)],
) -> Counterexample {
    // Stem: BFS from node 0..k where k = number of initial nodes — the
    // construction in `verify` inserts all initial nodes before anything
    // else, and they are precisely the nodes with the property's initial
    // automaton state; BFS over everything reaching the region.
    let start_targets = region;
    let mut prev: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut seen = vec![false; nodes.len()];
    let mut queue = VecDeque::new();
    // All initial product nodes were created before any successor; node 0
    // is always initial. Seed every node that has the same automaton state
    // as node 0 and appears in the initial list — conservatively, seed
    // node 0 and any node never produced as a successor.
    let mut is_succ = vec![false; nodes.len()];
    for row in succs {
        for &(m, _) in row {
            is_succ[m] = true;
        }
    }
    for n in 0..nodes.len() {
        if !is_succ[n] || n == 0 {
            seen[n] = true;
            queue.push_back(n);
        }
    }
    let mut entry = None;
    'bfs: while let Some(n) = queue.pop_front() {
        if start_targets.contains(n) {
            entry = Some(n);
            break 'bfs;
        }
        for &(m, _) in &succs[n] {
            if !seen[m] {
                seen[m] = true;
                prev[m] = Some(n);
                queue.push_back(m);
            }
        }
    }
    let entry = entry.expect("region is reachable");
    let mut stem_nodes = vec![entry];
    let mut cur = entry;
    while let Some(p) = prev[cur] {
        stem_nodes.push(p);
        cur = p;
    }
    stem_nodes.reverse();

    // Cycle: tour all region nodes and required edges, starting and ending
    // at `entry`.
    let path_within = |from: usize, to: usize| -> Vec<usize> {
        // BFS within region; returns intermediate+target nodes (empty if
        // from == to).
        if from == to {
            return Vec::new();
        }
        let mut prev: Vec<Option<usize>> = vec![None; nodes.len()];
        let mut seen = vec![false; nodes.len()];
        let mut queue = VecDeque::new();
        seen[from] = true;
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            for &(m, _) in &succs[n] {
                if region.contains(m) && !seen[m] {
                    seen[m] = true;
                    prev[m] = Some(n);
                    if m == to {
                        let mut path = vec![to];
                        let mut c = to;
                        while let Some(p) = prev[c] {
                            if p == from {
                                break;
                            }
                            path.push(p);
                            c = p;
                        }
                        path.reverse();
                        return path;
                    }
                    queue.push_back(m);
                }
            }
        }
        unreachable!("region is strongly connected");
    };
    let mut cycle_nodes: Vec<usize> = Vec::new();
    let mut at = entry;
    // Visit every node of the region.
    for target in region.iter() {
        let leg = path_within(at, target);
        at = *leg.last().unwrap_or(&at);
        cycle_nodes.extend(leg);
    }
    // Traverse every required edge.
    for &(u, v) in required_edges {
        let leg = path_within(at, u);
        cycle_nodes.extend(leg);
        cycle_nodes.push(v);
        at = v;
    }
    // Close the loop.
    let leg = path_within(at, entry);
    cycle_nodes.extend(leg);
    if cycle_nodes.is_empty() {
        // Single-node region with a self-loop.
        cycle_nodes.push(entry);
    }
    Counterexample {
        stem: stem_nodes.iter().map(|&n| nodes[n].0).collect(),
        cycle: cycle_nodes.iter().map(|&n| nodes[n].0).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;
    use hierarchy_logic::to_automaton::compile_over;
    use hierarchy_logic::Formula;

    /// A process looping n → t → c → n, with a lazy "stay at t" option.
    fn simple_loop(weak_entry: bool) -> (TransitionSystem, Alphabet) {
        let sigma = Alphabet::new(["n", "t", "c"]).unwrap();
        let mut ts = TransitionSystem::new(&sigma);
        let n = ts.add_state(sigma.symbol("n").unwrap());
        let t = ts.add_state(sigma.symbol("t").unwrap());
        let c = ts.add_state(sigma.symbol("c").unwrap());
        ts.set_initial(n);
        ts.add_transition("request", vec![(n, t)], Fairness::None);
        ts.add_transition("idle", vec![(n, n), (t, t)], Fairness::None);
        ts.add_transition(
            "enter",
            vec![(t, c)],
            if weak_entry {
                Fairness::Weak
            } else {
                Fairness::None
            },
        );
        ts.add_transition("leave", vec![(c, n)], Fairness::Weak);
        (ts, sigma)
    }

    fn spec(sigma: &Alphabet, src: &str) -> OmegaAutomaton {
        compile_over(sigma, &Formula::parse(sigma, src).unwrap()).unwrap()
    }

    #[test]
    fn safety_holds() {
        let (ts, sigma) = simple_loop(true);
        // □¬(n ∧ c) is trivially a tautology per-state; check a real one:
        // □(c → ⊖t): entering c only from t.
        let v = verify(&ts, &spec(&sigma, "G (c -> Y t)")).expect("check");
        assert!(v.holds());
    }

    #[test]
    fn response_needs_fairness() {
        // With weak fairness on `enter`, every request is served.
        let (ts, sigma) = simple_loop(true);
        assert!(verify(&ts, &spec(&sigma, "G (t -> F c)"))
            .expect("check")
            .holds());
        // Without fairness the process may idle at t forever.
        let (ts, sigma) = simple_loop(false);
        let v = verify(&ts, &spec(&sigma, "G (t -> F c)")).expect("check");
        match v {
            Verdict::Violated(cex) => {
                assert!(!cex.cycle.is_empty());
                // The counterexample loops in the trying state (1).
                assert!(cex.cycle.contains(&1));
            }
            Verdict::Holds => panic!("expected a violation"),
        }
    }

    #[test]
    fn violated_safety_gives_counterexample() {
        let (ts, sigma) = simple_loop(true);
        // □¬c is false: the system does reach c under fairness… but also
        // without: any computation reaching c violates.
        let v = verify(&ts, &spec(&sigma, "G !c")).expect("check");
        match v {
            Verdict::Violated(cex) => {
                let all: Vec<usize> = cex.stem.iter().chain(cex.cycle.iter()).copied().collect();
                assert!(all.contains(&2), "counterexample must reach c");
            }
            Verdict::Holds => panic!("□¬c should be violated"),
        }
    }

    #[test]
    fn strong_fairness_distinguishes() {
        // Two requesters sharing a semaphore; only strong fairness on the
        // grant transitions guarantees accessibility for both.
        let sigma = Alphabet::of_propositions(["c1", "c2"]).unwrap();
        let none = sigma.valuation_symbol(&[false, false]);
        let in1 = sigma.valuation_symbol(&[true, false]);
        let in2 = sigma.valuation_symbol(&[false, true]);
        let build = |fair: Fairness| {
            let mut ts = TransitionSystem::new(&sigma);
            let idle = ts.add_state(none);
            let c1 = ts.add_state(in1);
            let c2 = ts.add_state(in2);
            ts.set_initial(idle);
            ts.add_transition("grant1", vec![(idle, c1)], fair);
            ts.add_transition("grant2", vec![(idle, c2)], fair);
            ts.add_transition("release1", vec![(c1, idle)], Fairness::Weak);
            ts.add_transition("release2", vec![(c2, idle)], Fairness::Weak);
            ts
        };
        // Strong fairness: both critical sections recur.
        let ts = build(Fairness::Strong);
        assert!(verify(&ts, &spec(&sigma, "G F c1")).expect("check").holds());
        assert!(verify(&ts, &spec(&sigma, "G F c2")).expect("check").holds());
        // Weak fairness does NOT suffice: alternating idle→c1→idle→c1…
        // disables grant2 at c1, so grant2 is not continuously enabled.
        let ts = build(Fairness::Weak);
        let v = verify(&ts, &spec(&sigma, "G F c2")).expect("check");
        assert!(!v.holds(), "weak fairness admits starvation of process 2");
    }

    #[test]
    fn counterexample_is_a_real_computation() {
        let (ts, sigma) = simple_loop(false);
        let prop = spec(&sigma, "G (t -> F c)");
        if let Verdict::Violated(cex) = verify(&ts, &prop).expect("check") {
            // Each consecutive pair is an edge of the system; the cycle
            // closes.
            let check_step = |a: usize, b: usize| ts.successors(a).contains(&b);
            let mut seq = cex.stem.clone();
            seq.extend(cex.cycle.iter().copied());
            for w in seq.windows(2) {
                assert!(check_step(w[0], w[1]), "bad step {} -> {}", w[0], w[1]);
            }
            let last = *cex.cycle.last().unwrap();
            let first_of_cycle = cex.cycle[0];
            assert!(check_step(last, first_of_cycle), "cycle must close");
            // And the independent validator agrees on all counts.
            validate_violation(&ts, &prop, &cex).expect("validator");
        } else {
            panic!("expected violation");
        }
    }

    #[test]
    fn mux_safety_discharged_without_product() {
        let sigma = crate::programs::observation_alphabet();
        let prog = crate::absint::mux_sem_abs(Fairness::Strong);
        let prop = spec(&sigma, "G !(c1 & c2)");
        let (v, stats) =
            check_with_invariants(&prog, &sigma, &prop, DomainKind::ValueSets).expect("check");
        assert!(v.holds(), "mutual exclusion holds");
        assert_eq!(stats.certificate_ok, Some(true));
        assert!(stats.discharged, "safety should be proved abstractly");
        assert_eq!(stats.product_states, 0, "no product was built");
        assert!(stats.abstract_pairs > 0);
        // The explicit check of the same property does build a product —
        // the bench criterion "strictly fewer product states".
        let (ts, _) = crate::programs::mux_sem(Fairness::Strong);
        let (ev, estats) = verify_with_stats(&ts, &prop).expect("explicit");
        assert!(ev.holds());
        assert!(
            estats.product_states > stats.product_states,
            "explicit product ({}) must exceed the discharged path (0)",
            estats.product_states
        );
    }

    #[test]
    fn token_ring_safety_discharged() {
        let sigma = crate::programs::observation_alphabet();
        let prog = crate::absint::token_ring_abs(true);
        let prop = spec(&sigma, "G !(c1 & c2)");
        let (v, stats) =
            check_with_invariants(&prog, &sigma, &prop, DomainKind::ValueSets).expect("check");
        assert!(v.holds());
        assert!(stats.discharged);
        assert_eq!(stats.product_states, 0);
    }

    #[test]
    fn peterson_mutex_falls_back_to_product() {
        // The cartesian domains cannot correlate tb with pc2, so the
        // abstract product reaches the dead state and the checker must
        // fall back to the explicit product — which still proves mutex,
        // and the prune filter must not remove any concrete node.
        let sigma = crate::programs::observation_alphabet();
        let prog = crate::absint::peterson_abs();
        let prop = spec(&sigma, "G !(c1 & c2)");
        let (v, stats) =
            check_with_invariants(&prog, &sigma, &prop, DomainKind::ValueSets).expect("check");
        assert!(v.holds(), "Peterson guarantees mutual exclusion");
        assert_eq!(stats.certificate_ok, Some(true));
        assert!(!stats.discharged, "cartesian domains cannot prove this");
        assert!(stats.product_states > 0, "explicit fallback ran");
        assert_eq!(
            stats.pruned_product_states, 0,
            "abstract pruning is a no-op"
        );
    }

    #[test]
    fn peterson_mutex_discharged_relationally() {
        // What the cartesian fallback above cannot do, the pair-relation
        // domain can: the (pc2, tb) correlation makes "both critical"
        // abstractly infeasible, so mutex discharges at zero product
        // states and both certifiers vouch for the invariant.
        let sigma = crate::programs::observation_alphabet();
        let prog = crate::absint::peterson_abs();
        let prop = spec(&sigma, "G !(c1 & c2)");
        let (v, stats) =
            check_with_invariants(&prog, &sigma, &prop, DomainKind::Relational).expect("check");
        assert!(v.holds(), "Peterson guarantees mutual exclusion");
        assert_eq!(stats.certificate_ok, Some(true));
        assert!(stats.discharged, "the relational domain proves this");
        assert_eq!(stats.product_states, 0, "no product was built");
        assert_eq!(stats.pruned_product_states, 0);
    }

    #[test]
    fn n_process_families_discharge_relationally() {
        let sigma = crate::programs::observation_alphabet();
        let prop = spec(&sigma, "G !(c1 & c2)");
        for n in 2..=4 {
            for (name, prog) in [
                ("mux_sem_n", crate::absint::mux_sem_n(n)),
                ("token_ring_n", crate::absint::token_ring_n(n)),
                ("dining_philosophers", crate::absint::dining_philosophers(n)),
            ] {
                let (v, stats) =
                    check_with_invariants(&prog, &sigma, &prop, DomainKind::Relational)
                        .expect("check");
                assert!(v.holds(), "{name}({n}): mutex holds");
                assert_eq!(stats.certificate_ok, Some(true), "{name}({n})");
                assert!(stats.discharged, "{name}({n}): static discharge");
                assert_eq!(stats.product_states, 0, "{name}({n})");
            }
        }
        // The cartesian honest gap, at family scale: value sets still
        // discharge mux_sem_n (the grant guard refines every pc_j), but
        // lose the token correlation of the distributed ring.
        let (v, stats) = check_with_invariants(
            &crate::absint::token_ring_n(4),
            &sigma,
            &prop,
            DomainKind::ValueSets,
        )
        .expect("check");
        assert!(v.holds());
        assert!(!stats.discharged, "cartesian masks lose the token bits");
        assert!(stats.product_states > 0);
    }

    #[test]
    fn invariant_first_agrees_on_violations() {
        // Weak fairness on the semaphore grants admits starvation; the
        // invariant-first checker must report the same violation the
        // explicit checker finds (response is not safety, so no
        // discharge is attempted).
        let sigma = crate::programs::observation_alphabet();
        let prog = crate::absint::mux_sem_abs(Fairness::Weak);
        let prop = spec(&sigma, "G (t2 -> F c2)");
        let (v, stats) =
            check_with_invariants(&prog, &sigma, &prop, DomainKind::ValueSets).expect("check");
        assert!(!stats.discharged);
        let (ts, _) = crate::programs::mux_sem(Fairness::Weak);
        let ev = verify(&ts, &prop).expect("explicit");
        assert_eq!(v.holds(), ev.holds());
        assert!(!v.holds(), "weak grants admit starvation");
        if let Verdict::Violated(cex) = v {
            assert!(!cex.cycle.is_empty());
        }
    }

    #[test]
    fn invariant_first_rejects_bad_inputs() {
        let sigma = crate::programs::observation_alphabet();
        let prog = crate::absint::mux_sem_abs(Fairness::Strong);
        let prop = spec(&sigma, "G !(c1 & c2)");
        // Alphabet mismatch: property over a different alphabet.
        let other = Alphabet::of_propositions(["p0", "p1"]).unwrap();
        let bad_prop = spec(&other, "G p0");
        assert!(matches!(
            check_with_invariants(&prog, &sigma, &bad_prop, DomainKind::ValueSets),
            Err(CheckError::AlphabetMismatch)
        ));
        // Invalid program: no variables.
        let empty = Program::new();
        assert!(matches!(
            check_with_invariants(&empty, &sigma, &prop, DomainKind::ValueSets),
            Err(CheckError::InvalidProgram(_))
        ));
    }

    #[test]
    fn validator_rejects_tampered_counterexamples() {
        let (ts, sigma) = simple_loop(false);
        let prop = spec(&sigma, "G (t -> F c)");
        let Verdict::Violated(cex) = verify(&ts, &prop).expect("check") else {
            panic!("expected violation");
        };
        validate_violation(&ts, &prop, &cex).expect("the real one is valid");

        // Empty cycle.
        let mut bad = cex.clone();
        bad.cycle.clear();
        assert!(validate_counterexample(&ts, &bad)
            .unwrap_err()
            .contains("empty"));

        // Non-initial start: begin the stem at c (state 2).
        let bad = Counterexample {
            stem: vec![2],
            cycle: cex.cycle.clone(),
        };
        assert!(validate_counterexample(&ts, &bad)
            .unwrap_err()
            .contains("not initial"));

        // Non-edge step: c → c is not an edge of any transition.
        let bad = Counterexample {
            stem: vec![0, 1],
            cycle: vec![2, 2],
        };
        assert!(validate_counterexample(&ts, &bad).is_err());

        // Unfair cycle: with weak fairness on `enter`, idling at t
        // forever leaves a continuously enabled transition untaken.
        let (fair_ts, _) = simple_loop(true);
        let bad = Counterexample {
            stem: vec![0],
            cycle: vec![1],
        };
        assert!(validate_counterexample(&fair_ts, &bad)
            .unwrap_err()
            .contains("never taken"));
        // The same lasso is a perfectly fair computation when `enter`
        // carries no fairness.
        validate_counterexample(&ts, &bad).expect("fair without the constraint");
    }
}
